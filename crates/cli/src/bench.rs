//! The `fjs bench` subcommand: a small, named suite of end-to-end timing
//! cases over the workspace's hot paths, emitted as a
//! [`fjs_analysis::benchjson`] schema-v1 report.
//!
//! The suite is the regression contract behind `BENCH_baseline.json` at the
//! repository root: CI re-runs `fjs bench --json` and gates the result with
//! `fjs bench-diff --max-regress 15`. The two sweep-shaped cases
//! (`conform-deck`, `exhaustive-sweep`) exercise the sharded executor and
//! the memoized exact-optimum cache; the component cases
//! (`engine-static-1k`, `interval-union-bulk`) watch the engine hot-path
//! diet and the bulk interval merge; `serve-throughput-1k` times the
//! resident daemon's whole service path over an in-memory loadgen script.

use crate::experiments::e10_exhaustive::{enumerate_instances, sample_instance, validate_on};
use fjs_analysis::benchjson::BenchReport;
use fjs_analysis::{time_case, BenchSample};
use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::job::Instance;
use fjs_core::sim::{run_static, Clairvoyance};
use fjs_core::time::t;
use fjs_schedulers::{optimal_alpha, SchedulerKind, OPTIMAL_K};
use fjs_testkit::{all_targets, run_conformance, ConformConfig};

/// The scheduler set timed by the sweep cases (mirrors experiment E10).
fn bench_kinds() -> [SchedulerKind; 7] {
    [
        SchedulerKind::Batch,
        SchedulerKind::BatchPlus,
        SchedulerKind::Cdb {
            alpha: optimal_alpha(),
            base: 1.0,
        },
        SchedulerKind::Profit { k: OPTIMAL_K },
        SchedulerKind::Doubler { c: 1.0 },
        SchedulerKind::Eager,
        SchedulerKind::Lazy,
    ]
}

/// The `conform-deck` workload: a quick-mode conformance pass over every
/// registered scheduler — deck instance generation, every applicable
/// oracle, and the exact-DP ratio denominators.
fn conform_deck_case() -> BenchSample {
    let targets = all_targets();
    let config = ConformConfig {
        cases: 16,
        base_seed: 1,
        quick: true,
        ..ConformConfig::default()
    };
    time_case("conform-deck", || {
        let report = run_conformance(&targets, &config);
        assert!(report.is_clean(), "bench deck must stay clean");
        report.checks
    })
}

/// The `exhaustive-sweep` workload: experiment E10's validation loop — the
/// full ordered 2-job grid plus heavier sampled instances, each solved to
/// the exact optimum, for all seven scheduler kinds over the *same*
/// instance list (the sharing the optimum cache exploits).
fn exhaustive_sweep_case() -> BenchSample {
    let mut instances: Vec<Instance> = enumerate_instances(2, 3, 2, 2);
    instances.extend((0..24).map(|seed| sample_instance(seed, 8)));
    let kinds = bench_kinds();
    time_case("exhaustive-sweep", || {
        let mut worst: f64 = 0.0;
        for &kind in &kinds {
            worst = worst.max(validate_on(kind, &instances).max_ratio);
        }
        assert!(worst.is_finite() && worst >= 1.0 - 1e-9);
        worst
    })
}

/// The `engine-static-1k` workload: one full event-driven run of a
/// 1000-job cloud-batch instance under the default [`fjs_core::sim::SimConfig`]
/// — queue growth, action application and span assembly, no tracing.
fn engine_case() -> BenchSample {
    let inst = fjs_workloads::Scenario::CloudBatch.generate(1000, 3);
    time_case("engine-static-1k", || {
        let out = run_static(
            &inst,
            Clairvoyance::NonClairvoyant,
            fjs_schedulers::Batch::new(),
        );
        assert!(out.is_feasible());
        out.span.get()
    })
}

/// The `engine-static-10k` workload: the same shape at 10× scale, where
/// arena locality and calendar-queue O(1) pops dominate (a BinaryHeap or
/// an O(n) sorted-Vec removal shows up superlinearly here). The case also
/// pins the arena memory counters so regressions fail on footprint, not
/// just time.
fn engine_case_10k() -> BenchSample {
    let inst = fjs_workloads::Scenario::CloudBatch.generate(10_000, 3);
    time_case("engine-static-10k", || {
        let out = run_static(
            &inst,
            Clairvoyance::NonClairvoyant,
            fjs_schedulers::Batch::new(),
        );
        assert!(out.is_feasible());
        assert_eq!(out.stats.peak_retained, 10_000, "batch runs retain all");
        assert_eq!(out.stats.arena_slots, 10_000, "no slot churn on batch");
        out.span.get()
    })
}

/// The `interval-union-bulk` workload: merging many pre-built interval
/// sets into an accumulator (the busy-time union shape behind span and
/// concurrency metrics).
fn interval_union_case() -> BenchSample {
    let sets: Vec<IntervalSet> = (0..64)
        .map(|k| {
            (0..96)
                .map(|i| {
                    let x = (((k * 96 + i) as u64).wrapping_mul(2654435761) % 50_000) as f64 / 7.0;
                    Interval::new(t(x), t(x + 2.5))
                })
                .collect()
        })
        .collect();
    time_case("interval-union-bulk", || {
        let mut acc = IntervalSet::new();
        for s in &sets {
            acc.union_with(s);
        }
        acc.measure()
    })
}

/// The `serve-throughput-1k` workload: the resident daemon's whole
/// service path — protocol parsing, session multiplexing, incremental
/// span accounting, decision-log rendering — over a deterministic
/// 1000-job, 4-session loadgen script, no I/O beyond an in-memory log.
fn serve_throughput_case() -> BenchSample {
    let script = crate::loadgen::emit_script(&crate::loadgen::LoadgenOptions {
        jobs: 1000,
        sessions: 4,
        seed: 0x5eed_10ad,
        ..crate::loadgen::LoadgenOptions::default()
    });
    time_case("serve-throughput-1k", || {
        let out = crate::serve::run_script(&script, crate::serve::ServeOptions::default())
            .expect("bench script must run");
        assert_eq!(out.summary.jobs, 1000, "bench script must admit every job");
        assert!(out.summary.halted.is_none());
        out.summary.decision_lines as f64
    })
}

/// The `serve-throughput-1k-w4` workload: the same service path as
/// `serve-throughput-1k` but through the pooled backend with 4 worker
/// threads and 8 sessions, so the per-session work shards across
/// workers. On a multi-core runner this should beat the serial case by
/// roughly the worker count; on one core it measures pool overhead.
fn serve_throughput_pooled_case() -> BenchSample {
    let script = crate::loadgen::emit_script(&crate::loadgen::LoadgenOptions {
        jobs: 1000,
        sessions: 8,
        seed: 0x5eed_10ad,
        ..crate::loadgen::LoadgenOptions::default()
    });
    let opts = crate::serve::ServeOptions {
        workers: 4,
        ..crate::serve::ServeOptions::default()
    };
    time_case("serve-throughput-1k-w4", || {
        let out =
            crate::serve::run_script_pooled(&script, opts.clone()).expect("bench script must run");
        assert_eq!(out.summary.jobs, 1000, "bench script must admit every job");
        assert!(out.summary.halted.is_none());
        out.summary.decision_lines as f64
    })
}

/// Runs the whole suite and returns the schema-v1 report.
pub fn run_bench_suite() -> BenchReport {
    let mut report = BenchReport::new(git_describe());
    report.upsert(conform_deck_case());
    report.upsert(exhaustive_sweep_case());
    report.upsert(engine_case());
    report.upsert(engine_case_10k());
    report.upsert(interval_union_case());
    report.upsert(serve_throughput_case());
    report.upsert(serve_throughput_pooled_case());
    report
}

/// `git describe --always --dirty` of the checkout, or `"unknown"`.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
