//! Determinism contract for the service layer against the batch engine,
//! across the whole scheduler registry: driving a registry-built
//! scheduler through `fjs serve`'s in-process core must produce exactly
//! the spans the batch engine computes for the same instance, and a
//! poisoned session must never leak into its neighbours.

use fjs_cli::serve::{run_script, run_script_pooled, ServeOptions};
use fjs_core::job::{Instance, Job};
use fjs_core::supervise::with_quiet_panics;
use fjs_schedulers::SchedulerKind;

/// A deck with strictly increasing quarter-grid arrivals (so the session
/// and engine see identical release orderings) and mixed laxity.
fn deck() -> Vec<(f64, f64, f64)> {
    vec![
        (0.0, 0.0, 2.0),
        (0.25, 1.75, 1.5),
        (0.75, 4.0, 0.5),
        (1.5, 1.5, 2.25),
        (2.25, 6.0, 1.0),
        (3.5, 3.75, 0.25),
        (4.0, 9.0, 2.0),
        (5.25, 5.25, 1.25),
        (6.0, 11.0, 0.75),
        (7.5, 8.0, 1.0),
        (9.0, 14.0, 3.0),
        (10.25, 10.5, 0.5),
    ]
}

fn instance() -> Instance {
    Instance::new(
        deck()
            .into_iter()
            .map(|(a, d, p)| Job::adp(a, d, p))
            .collect(),
    )
}

fn script_for(kind: SchedulerKind) -> String {
    let mut s = format!("open x {}\n", kind.short_name());
    for (a, d, p) in deck() {
        s.push_str(&format!("job x {a},{d},{p}\n"));
    }
    s.push_str("close x\n");
    s
}

/// Extracts the `span=` value (as rendered text, so the comparison is
/// exact) from the session's close line.
fn close_span(log: &str) -> String {
    log.lines()
        .find_map(|l| l.strip_prefix("x close span="))
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no close line in log: {log:?}"))
        .to_string()
}

#[test]
fn every_registered_scheduler_matches_its_batch_span() {
    for kind in SchedulerKind::registered_set() {
        let out = run_script(&script_for(kind), ServeOptions::default())
            .unwrap_or_else(|e| panic!("{}: serve script failed: {e}", kind.label()));
        assert!(
            out.summary.halted.is_none(),
            "{}: {:?}",
            kind.label(),
            out.summary.halted
        );
        assert_eq!(out.summary.jobs, deck().len() as u64, "{}", kind.label());
        let batch = kind.run_on(&instance());
        assert!(
            batch.termination.is_completed(),
            "{}: batch run must complete",
            kind.label()
        );
        assert_eq!(
            close_span(&out.log),
            batch.span.to_string(),
            "{}: session span must equal the batch engine span",
            kind.label()
        );
        // Start decisions stream one per job.
        let starts = out.log.lines().filter(|l| l.contains(" start ")).count();
        let dones = out.log.lines().filter(|l| l.contains(" done ")).count();
        assert_eq!(
            (starts, dones),
            (deck().len(), deck().len()),
            "{}",
            kind.label()
        );
    }
}

#[test]
fn serve_decision_stream_is_deterministic_per_scheduler() {
    for kind in SchedulerKind::registered_set() {
        let a = run_script(&script_for(kind), ServeOptions::default()).unwrap();
        let b = run_script(&script_for(kind), ServeOptions::default()).unwrap();
        assert_eq!(
            a.log,
            b.log,
            "{}: same input must produce a byte-identical decision log",
            kind.label()
        );
        assert_eq!(a.replies, b.replies, "{}", kind.label());
    }
}

/// The worker pool's determinism contract: for a script interleaving
/// every registered scheduler across concurrent sessions, the pooled
/// backend must produce the serial backend's decision log and replies
/// byte for byte, at every worker count.
#[test]
fn pooled_backend_is_byte_identical_to_serial() {
    let kinds = SchedulerKind::registered_set();
    let mut script = String::new();
    for (i, kind) in kinds.iter().enumerate() {
        script.push_str(&format!("open n{i} {}\n", kind.short_name()));
    }
    for (a, d, p) in deck() {
        for i in 0..kinds.len() {
            script.push_str(&format!("job n{i} {a},{d},{p}\n"));
        }
    }
    for i in 0..kinds.len() {
        script.push_str(&format!("stats n{i}\n"));
        script.push_str(&format!("close n{i}\n"));
    }

    let serial = run_script(&script, ServeOptions::default()).expect("serial run");
    assert!(serial.summary.halted.is_none());
    for workers in [1, 2, 3, 8] {
        let opts = ServeOptions {
            workers,
            ..ServeOptions::default()
        };
        let pooled = run_script_pooled(&script, opts).expect("pooled run");
        assert_eq!(
            serial.log, pooled.log,
            "workers={workers}: decision log must match the serial backend"
        );
        assert_eq!(
            serial.replies, pooled.replies,
            "workers={workers}: replies must match the serial backend"
        );
        assert_eq!(
            serial.summary.jobs, pooled.summary.jobs,
            "workers={workers}"
        );
        assert_eq!(
            serial.summary.shed, pooled.summary.shed,
            "workers={workers}"
        );
    }
}

/// A poisoned session sharded onto one worker must not stall its
/// sibling workers' sessions: the pooled run completes, the poisoned
/// session gets a typed verdict, and every healthy session's log equals
/// its clean serial run.
#[test]
fn pooled_poison_session_does_not_stall_siblings() {
    let kinds = SchedulerKind::registered_set();
    let clean: Vec<(SchedulerKind, String)> = kinds
        .iter()
        .map(|&kind| {
            let out = run_script(&script_for(kind), ServeOptions::default()).unwrap();
            (kind, out.log)
        })
        .collect();

    for poison in ["poison:panic:eager", "poison:hang:eager"] {
        let mut script = format!("open bad {poison}\n");
        for (i, (kind, _)) in clean.iter().enumerate() {
            script.push_str(&format!("open n{i} {}\n", kind.short_name()));
        }
        for (j, (a, d, p)) in deck().into_iter().enumerate() {
            if j == 1 {
                script.push_str(&format!("job bad {a},{d},{p}\n"));
            }
            for i in 0..clean.len() {
                script.push_str(&format!("job n{i} {a},{d},{p}\n"));
            }
        }
        script.push_str("close bad\n");
        for i in 0..clean.len() {
            script.push_str(&format!("close n{i}\n"));
        }

        let opts = ServeOptions {
            workers: 4,
            watchdog_events: 5_000,
            ..ServeOptions::default()
        };
        let out = with_quiet_panics(|| run_script_pooled(&script, opts).unwrap());
        let bad_close = out
            .log
            .lines()
            .find(|l| l.starts_with("bad close"))
            .unwrap_or_else(|| panic!("{poison}: no close line for the poisoned session"));
        assert!(
            bad_close.contains("verdict=panicked") || bad_close.contains("verdict=timed-out"),
            "{poison}: poisoned session must end with a typed verdict: {bad_close}"
        );

        for (i, (kind, clean_log)) in clean.iter().enumerate() {
            let prefix = format!("n{i} ");
            let mine: Vec<&str> = out
                .log
                .lines()
                .filter_map(|l| l.strip_prefix(&prefix))
                .collect();
            let reference: Vec<&str> = clean_log
                .lines()
                .filter_map(|l| l.strip_prefix("x "))
                .collect();
            assert_eq!(
                mine,
                reference,
                "{poison}: pooled session n{i} ({}) diverged from its clean run",
                kind.label()
            );
        }
    }
}

/// One poisoned session per mode, surrounded by every registered
/// scheduler running the shared deck: the neighbours' logs must be
/// byte-identical to runs without the poison present.
#[test]
fn poison_never_leaks_across_sessions() {
    let clean: Vec<(SchedulerKind, String)> = SchedulerKind::registered_set()
        .into_iter()
        .map(|kind| {
            let out = run_script(&script_for(kind), ServeOptions::default()).unwrap();
            (kind, out.log)
        })
        .collect();

    for poison in ["poison:panic:eager", "poison:hang:eager"] {
        // Interleave the poisoned session's jobs with every healthy one.
        // Session names are n0, n1, ... (registry short names like
        // `batch+` are not valid sids).
        let mut script = format!("open bad {poison}\n");
        for (i, (kind, _)) in clean.iter().enumerate() {
            script.push_str(&format!("open n{i} {}\n", kind.short_name()));
        }
        for (j, (a, d, p)) in deck().into_iter().enumerate() {
            if j == 1 {
                script.push_str(&format!("job bad {a},{d},{p}\n"));
            }
            for i in 0..clean.len() {
                script.push_str(&format!("job n{i} {a},{d},{p}\n"));
            }
        }
        script.push_str("close bad\n");
        for i in 0..clean.len() {
            script.push_str(&format!("close n{i}\n"));
        }

        let opts = ServeOptions {
            watchdog_events: 5_000,
            ..ServeOptions::default()
        };
        let out = with_quiet_panics(|| run_script(&script, opts).unwrap());
        let bad_close = out
            .log
            .lines()
            .find(|l| l.starts_with("bad close"))
            .unwrap_or_else(|| panic!("{poison}: no close line for the poisoned session"));
        assert!(
            bad_close.contains("verdict=panicked") || bad_close.contains("verdict=timed-out"),
            "{poison}: poisoned session must end with a typed verdict: {bad_close}"
        );

        for (i, (kind, clean_log)) in clean.iter().enumerate() {
            let prefix = format!("n{i} ");
            let mine: Vec<&str> = out
                .log
                .lines()
                .filter_map(|l| l.strip_prefix(&prefix))
                .collect();
            let reference: Vec<&str> = clean_log
                .lines()
                .filter_map(|l| l.strip_prefix("x "))
                .collect();
            assert_eq!(
                mine,
                reference,
                "{poison}: session n{i} ({}) diverged from its clean run",
                kind.label()
            );
        }
    }
}
