//! Seeded never-panic fuzz over the serve line protocol.
//!
//! Two generators feed [`parse_request`]: raw arbitrary bytes (lossily
//! decoded, as the daemon's reader does for non-UTF-8 input) and
//! structured mutations of known-good lines (byte flips, truncations,
//! splices, whitespace injection). The parser must never panic, and every
//! `Ok(Some(_))` it returns must satisfy the protocol invariants the
//! daemon relies on downstream: echo-safe session names and finite,
//! well-ordered job windows.
//!
//! Deterministic by construction — fixed seeds through `fjs-prng`, no
//! time or OS entropy — so a failure reproduces exactly.

use fjs_cli::serve::protocol::{parse_request, Request};
use fjs_prng::SmallRng;

/// Asserts the invariants the serve dispatcher assumes about any request
/// the parser lets through.
fn check_invariants(line: &str, req: &Request) {
    if let Some(sid) = req.sid() {
        assert!(
            !sid.is_empty() && sid.len() <= 64,
            "sid length out of bounds for line {line:?}: {sid:?}"
        );
        assert!(
            sid.chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')),
            "sid with unsafe chars leaked through for line {line:?}: {sid:?}"
        );
    }
    if let Request::Job {
        arrival,
        deadline,
        length,
        ..
    } = req
    {
        assert!(
            arrival.is_finite() && deadline.is_finite() && length.is_finite(),
            "non-finite job field for line {line:?}"
        );
        assert!(
            deadline >= arrival,
            "inverted window admitted for line {line:?}"
        );
        assert!(
            *length > 0.0,
            "non-positive length admitted for line {line:?}"
        );
    }
}

#[test]
fn parser_never_panics_on_arbitrary_bytes() {
    let mut rng = SmallRng::seed_from_u64(0xF0D5_EC41_7A11_0001);
    for _ in 0..20_000 {
        let len = rng.usize_range(0, 200);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let line = String::from_utf8_lossy(&bytes);
        // The daemon frames on '\n'; feed each framed piece like the
        // reader would.
        for piece in line.split('\n') {
            if let Ok(Some(req)) = parse_request(piece) {
                check_invariants(piece, &req);
            }
        }
    }
}

#[test]
fn parser_never_panics_on_structured_mutations() {
    const SEEDS: &[&str] = &[
        "open alpha eager",
        "open t.a poison:panic:eager",
        "job alpha 0,5,2",
        "job t.a 0.25,1e3,0.5",
        "close alpha",
        "stats alpha",
        "stats",
        "# comment line",
        "job alpha 0,inf,2",
        "open alpha batch+",
    ];
    const JUNK: &[u8] = b" \t,.-_:;!@#\x00\x7f\xffABCxyz0189";
    let mut rng = SmallRng::seed_from_u64(0xF0D5_EC41_7A11_0002);
    for _ in 0..20_000 {
        let mut bytes = rng.choose(SEEDS).as_bytes().to_vec();
        for _ in 0..rng.usize_range(1, 5) {
            match rng.usize_range(0, 5) {
                // Flip one byte to an arbitrary value.
                0 if !bytes.is_empty() => {
                    let at = rng.usize_range(0, bytes.len());
                    bytes[at] = (rng.next_u64() & 0xFF) as u8;
                }
                // Truncate at a random point.
                1 if !bytes.is_empty() => {
                    bytes.truncate(rng.usize_range(0, bytes.len()));
                }
                // Insert a junk byte.
                2 => {
                    let at = rng.usize_range(0, bytes.len() + 1);
                    bytes.insert(at, *rng.choose(JUNK));
                }
                // Duplicate a random slice (torn-frame splice).
                3 if bytes.len() > 1 => {
                    let start = rng.usize_range(0, bytes.len() - 1);
                    let end = rng.usize_range(start + 1, bytes.len() + 1);
                    let slice = bytes[start..end].to_vec();
                    bytes.extend_from_slice(&slice);
                }
                // Prepend/append whitespace the parser must trim.
                _ => {
                    bytes.insert(0, b' ');
                    bytes.push(b'\t');
                }
            }
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(Some(req)) = parse_request(&line) {
            check_invariants(&line, &req);
        }
    }
}

#[test]
fn job_payload_edge_numbers_never_panic_and_keep_window_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xF0D5_EC41_7A11_0003);
    const SPECIALS: &[&str] = &[
        "0",
        "-0",
        "1",
        "-1",
        "inf",
        "-inf",
        "nan",
        "NaN",
        "1e308",
        "-1e308",
        "1e-308",
        "9007199254740993",
        "0.1",
        "1e999",
        "0x10",
        "1_000",
        "",
        " ",
        "+5",
        "5.",
        ".5",
    ];
    for _ in 0..10_000 {
        let field = |rng: &mut SmallRng| -> String {
            if rng.bool_with(0.5) {
                (*rng.choose(SPECIALS)).to_string()
            } else {
                format!("{:.6}", rng.f64_range(-1e12, 1e12))
            }
        };
        let a = field(&mut rng);
        let d = field(&mut rng);
        let l = field(&mut rng);
        let line = format!("job s {a},{d},{l}");
        match parse_request(&line) {
            Ok(Some(req)) => check_invariants(&line, &req),
            Ok(None) => panic!("job line parsed as silence: {line:?}"),
            Err(reason) => {
                assert!(
                    !reason.starts_with("line "),
                    "reader position prefix leaked into {reason:?}"
                );
            }
        }
    }
}
