//! Multi-core `fjs serve` end to end against the real binary: worker
//! count must never change observable bytes (decision log, journal,
//! replies), SIGKILL+`--resume` must hold at 8 workers, and the
//! connection layer must survive the failure modes that used to kill
//! the daemon — mid-line client disconnects, transient accept errors,
//! and a live socket path that a second daemon must refuse to clobber.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// A unique temp path per call so tests don't collide.
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("fjs-pool-{tag}-{}-{n}", std::process::id()));
    p
}

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_fjs")
}

/// Emits the shared deterministic load script via `fjs loadgen --emit`.
fn emit_script(path: &Path, sessions: u32, jobs: u32) {
    let out = Command::new(bin())
        .args(["loadgen", "--emit"])
        .arg(path)
        .args(["--sessions", &sessions.to_string()])
        .args(["--jobs", &jobs.to_string()])
        .args(["--seed", "23", "--scheduler", "batch"])
        .output()
        .expect("run fjs loadgen --emit");
    assert!(out.status.success(), "loadgen must succeed: {out:?}");
}

/// Runs `serve --input` at a given worker count, returning (replies,
/// status) with the log/journal left at the given paths.
fn serve_input(script: &Path, workers: u32, log: &Path, journal: &Path) -> (Vec<u8>, bool) {
    let out = Command::new(bin())
        .args(["serve", "--input"])
        .arg(script)
        .args(["--workers", &workers.to_string()])
        .args(["--log"])
        .arg(log)
        .args(["--journal"])
        .arg(journal)
        .output()
        .expect("serve --input run");
    (out.stdout, out.status.success())
}

/// Polls until the daemon's unix socket accepts a connection.
fn await_socket(path: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("daemon socket {} never came up: {e}", path.display()),
        }
    }
}

fn terminate(child: &mut Child) -> std::process::Output {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match child.try_wait().expect("try_wait") {
            Some(_) => break,
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut stderr = Vec::new();
    if let Some(mut pipe) = child.stderr.take() {
        let _ = pipe.read_to_end(&mut stderr);
    }
    let status = child.wait().expect("wait for daemon");
    std::process::Output {
        status,
        stdout: Vec::new(),
        stderr,
    }
}

/// The tentpole determinism contract at the binary level: decision log,
/// journal and replies are byte-identical at 1, 2 and 8 workers.
#[test]
fn worker_count_never_changes_observable_bytes() {
    let script = scratch("det-script");
    emit_script(&script, 8, 240);

    let mut outputs = Vec::new();
    for workers in [1u32, 2, 8] {
        let log = scratch(&format!("det-log-w{workers}"));
        let journal = scratch(&format!("det-journal-w{workers}"));
        let (replies, ok) = serve_input(&script, workers, &log, &journal);
        assert!(ok, "workers={workers} run must succeed");
        outputs.push((
            workers,
            std::fs::read(&log).expect("log"),
            std::fs::read(&journal).expect("journal"),
            replies,
            log,
            journal,
        ));
    }

    let (_, ref_log, ref_journal, ref_replies, ..) = &outputs[0];
    for (workers, log, journal, replies, ..) in &outputs[1..] {
        assert_eq!(log, ref_log, "workers={workers}: decision log diverged");
        assert_eq!(journal, ref_journal, "workers={workers}: journal diverged");
        assert_eq!(replies, ref_replies, "workers={workers}: replies diverged");
    }

    let _ = std::fs::remove_file(&script);
    for (.., log, journal) in &outputs {
        let _ = std::fs::remove_file(log);
        let _ = std::fs::remove_file(journal);
    }
}

/// SIGKILL mid-load at 8 workers, then `--resume` at 8 workers, must
/// converge to the uninterrupted single-worker decision log.
#[test]
fn sigkill_and_resume_at_8_workers_matches_serial_log() {
    let script = scratch("kill8-script");
    emit_script(&script, 8, 200);

    let ref_log = scratch("kill8-ref-log");
    let ref_journal = scratch("kill8-ref-journal");
    let (_, ok) = serve_input(&script, 1, &ref_log, &ref_journal);
    assert!(ok, "reference run must succeed");

    let cut_log = scratch("kill8-cut-log");
    let cut_journal = scratch("kill8-cut-journal");
    let mut child = Command::new(bin())
        .args(["serve", "--workers", "8", "--throttle-ms", "5"])
        .args(["--checkpoint-every", "1", "--input"])
        .arg(&script)
        .args(["--log"])
        .arg(&cut_log)
        .args(["--journal"])
        .arg(&cut_journal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn throttled 8-worker serve");
    std::thread::sleep(Duration::from_millis(400));
    let _ = Command::new("kill")
        .args(["-KILL", &child.id().to_string()])
        .status();
    let status = child.wait().expect("wait for killed serve");
    assert!(!status.success(), "SIGKILL must not exit cleanly");

    let resumed = Command::new(bin())
        .args(["serve", "--workers", "8", "--resume", "--input"])
        .arg(&script)
        .args(["--log"])
        .arg(&cut_log)
        .args(["--journal"])
        .arg(&cut_journal)
        .output()
        .expect("resumed 8-worker serve");
    assert!(resumed.status.success(), "{resumed:?}");

    assert_eq!(
        std::fs::read(&ref_log).expect("reference log"),
        std::fs::read(&cut_log).expect("resumed log"),
        "killed+resumed 8-worker log must equal the uninterrupted serial one"
    );

    for p in [&script, &ref_log, &ref_journal, &cut_log, &cut_journal] {
        let _ = std::fs::remove_file(p);
    }
}

/// The daemon-killing bug, pinned: a client dropping its connection
/// mid-line must cost exactly that connection. A second client keeps
/// scheduling and closing sessions, and the drain still exits 0 with
/// the disconnect counted.
#[test]
fn midline_disconnect_keeps_daemon_serving() {
    let sock = scratch("dc-sock");
    let mut child = Command::new(bin())
        .args(["serve", "--workers", "2", "--socket"])
        .arg(&sock)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn socket daemon");

    // Client A: half a request line, then a hard drop.
    let mut a = await_socket(&sock);
    a.write_all(b"open a eager\n").expect("client A open");
    let mut a_reader = BufReader::new(a.try_clone().expect("clone A"));
    let mut reply = String::new();
    a_reader.read_line(&mut reply).expect("client A reply");
    assert!(reply.starts_with("ok open a "), "{reply}");
    a.write_all(b"job a 0,5,").expect("client A partial line");
    a.flush().expect("flush A");
    let _ = a.shutdown(std::net::Shutdown::Both);
    drop(a);

    // Client B: a full session lifecycle, after A is gone.
    let b = await_socket(&sock);
    let mut b_reader = BufReader::new(b.try_clone().expect("clone B"));
    let mut b = b;
    let ask = |req: &str, reader: &mut BufReader<UnixStream>, w: &mut UnixStream| {
        writeln!(w, "{req}").expect("client B write");
        w.flush().expect("client B flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("client B read");
        line.trim_end().to_string()
    };
    for (req, want) in [
        ("open b eager", "ok open b "),
        ("job b 0,5,1", "ok job b id=J0"),
        ("job b 1,9,2", "ok job b id=J1"),
        ("close b", "ok close b"),
    ] {
        let reply = ask(req, &mut b_reader, &mut b);
        assert!(reply.starts_with(want), "'{req}' got '{reply}'");
    }
    drop(b_reader);
    drop(b);

    let out = terminate(&mut child);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "daemon must drain cleanly after a mid-line disconnect: {:?} (stderr: {stderr})",
        out.status
    );
    assert!(
        stderr.contains("1 dropped by I/O errors"),
        "summary must count the mid-line disconnect: {stderr}"
    );
    let _ = std::fs::remove_file(&sock);
}

/// Socket-path claiming: a second daemon must refuse a live socket with
/// exit 2, and a stale path (previous daemon SIGKILLed) must be swept
/// and rebound.
#[test]
fn live_socket_refused_stale_socket_reclaimed() {
    let sock = scratch("claim-sock");
    let mut first = Command::new(bin())
        .args(["serve", "--socket"])
        .arg(&sock)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn first daemon");
    drop(await_socket(&sock));

    let second = Command::new(bin())
        .args(["serve", "--socket"])
        .arg(&sock)
        .output()
        .expect("second daemon");
    assert_eq!(
        second.status.code(),
        Some(2),
        "live socket must be refused as a usage error: {second:?}"
    );
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("live daemon"),
        "{second:?}"
    );

    // SIGKILL the first daemon so the path goes stale…
    let _ = Command::new("kill")
        .args(["-KILL", &first.id().to_string()])
        .status();
    let _ = first.wait();
    assert!(sock.exists(), "SIGKILL must leave the socket path behind");

    // …and a fresh daemon must sweep it and serve.
    let mut third = Command::new(bin())
        .args(["serve", "--socket"])
        .arg(&sock)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn third daemon");
    let mut c = await_socket(&sock);
    let mut reader = BufReader::new(c.try_clone().expect("clone"));
    writeln!(c, "open x eager").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.trim_end().starts_with("ok open x "), "{line}");
    drop(reader);
    drop(c);
    let out = terminate(&mut third);
    assert!(out.status.success(), "{out:?}");
    let _ = std::fs::remove_file(&sock);
}

/// Picks a free TCP port by binding to :0 and releasing it.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind :0")
        .local_addr()
        .expect("local addr")
        .port()
}

/// TCP frontend end to end: closed-loop loadgen over TCP against a
/// 4-worker daemon, every request answered, none errored.
#[test]
fn tcp_frontend_serves_closed_loop_loadgen() {
    let addr = format!("127.0.0.1:{}", free_port());
    let mut child = Command::new(bin())
        .args(["serve", "--workers", "4", "--tcp", &addr])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tcp daemon");

    // Wait for the listener, then drive it closed-loop with 4 clients.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match std::net::TcpStream::connect(&addr) {
            Ok(_) => break,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("tcp daemon never came up: {e}"),
        }
    }
    let drive = Command::new(bin())
        .args(["loadgen", "--tcp", &addr])
        .args(["--sessions", "8", "--jobs", "160", "--concurrency", "4"])
        .output()
        .expect("closed-loop loadgen over tcp");
    assert!(drive.status.success(), "{drive:?}");
    let report = String::from_utf8_lossy(&drive.stdout);
    // 160 jobs + 8 opens + 8 closes, all answered, none err.
    assert!(report.contains("sent 176 requests"), "{report}");
    assert!(report.contains("176 replies"), "{report}");
    assert!(report.contains("0 err"), "{report}");
    assert!(report.contains("latency histogram le"), "{report}");

    let out = terminate(&mut child);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{:?} (stderr: {stderr})", out.status);
    // 4 loadgen clients + this test's readiness probe.
    assert!(stderr.contains("5 connections"), "{stderr}");
}

/// Concurrent unix-socket clients: two interleaved sessions on separate
/// connections both complete with correct, in-order replies.
#[test]
fn concurrent_socket_clients_interleave() {
    let sock = scratch("conc-sock");
    let mut child = Command::new(bin())
        .args(["serve", "--workers", "2", "--socket"])
        .arg(&sock)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn socket daemon");

    let sock_a = sock.clone();
    let sock_b = sock.clone();
    let run_client = move |path: PathBuf, sid: &'static str| -> Vec<String> {
        let mut s = await_socket(&path);
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut replies = Vec::new();
        let mut ask = |req: String| {
            writeln!(s, "{req}").expect("write");
            s.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            replies_push(&mut replies, line);
        };
        fn replies_push(v: &mut Vec<String>, line: String) {
            v.push(line.trim_end().to_string());
        }
        ask(format!("open {sid} eager"));
        for j in 0..20 {
            ask(format!("job {sid} {j},{},1", j + 5));
        }
        ask(format!("close {sid}"));
        replies
    };
    let ta = std::thread::spawn(move || run_client(sock_a, "alpha"));
    let tb = std::thread::spawn(move || run_client(sock_b, "beta"));
    let ra = ta.join().expect("client alpha");
    let rb = tb.join().expect("client beta");

    for (sid, replies) in [("alpha", &ra), ("beta", &rb)] {
        assert_eq!(replies.len(), 22, "{sid}");
        assert!(replies[0].starts_with(&format!("ok open {sid} ")), "{sid}");
        for (j, r) in replies[1..21].iter().enumerate() {
            assert!(
                r.starts_with(&format!("ok job {sid} id=J{j} ")),
                "{sid} job {j}: {r}"
            );
        }
        assert!(replies[21].starts_with(&format!("ok close {sid}")), "{sid}");
    }

    let out = terminate(&mut child);
    assert!(out.status.success(), "{out:?}");
    let _ = std::fs::remove_file(&sock);
}
