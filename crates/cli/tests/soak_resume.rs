//! Kill/resume discipline for `fjs soak`: a sweep stopped mid-run and
//! resumed must replay exactly the uncompleted cells and converge to a
//! journal — and a report — bit-identical to an uninterrupted run.

use fjs_cli::soak::{run_soak, SoakOptions};
use fjs_prng::check::forall;
use fjs_schedulers::SchedulerKind;
use fjs_testkit::Target;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// A unique temp path per call so proptest cases don't collide.
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("fjs-soak-{tag}-{}-{n}", std::process::id()));
    p
}

fn targets() -> Vec<Target> {
    vec![
        Target::Kind(SchedulerKind::Batch),
        Target::Kind(SchedulerKind::Eager),
    ]
}

#[test]
fn prop_stop_and_resume_matches_uninterrupted() {
    forall(10, |rng| {
        let base_seed = rng.next_u64();
        let cells = 3 + rng.u64_below(5) as usize;
        let total = cells * targets().len();
        let stop_after = rng.u64_below(total as u64) as usize;

        // Reference: one uninterrupted run.
        let ja = scratch("ref");
        let mut opts = SoakOptions::new(targets(), &ja);
        opts.cells = cells;
        opts.base_seed = base_seed;
        let full = run_soak(&opts).expect("reference soak");
        assert!(!full.interrupted);
        assert_eq!(full.ran, total);

        // Same sweep, "killed" after `stop_after` cells, then resumed.
        let jb = scratch("cut");
        let mut cut = SoakOptions::new(targets(), &jb);
        cut.cells = cells;
        cut.base_seed = base_seed;
        cut.stop_after = Some(stop_after);
        let first = run_soak(&cut).expect("interrupted soak");
        assert!(
            first.interrupted,
            "stop_after {stop_after} < total {total} must interrupt"
        );
        assert_eq!(first.ran, stop_after);

        cut.stop_after = None;
        cut.resume = true;
        let second = run_soak(&cut).expect("resumed soak");
        assert!(!second.interrupted);
        assert_eq!(
            second.skipped, stop_after,
            "resume must skip exactly the finished cells"
        );
        assert_eq!(
            second.ran,
            total - stop_after,
            "resume must replay exactly the rest"
        );

        // Bit-identity: the journal bytes and the rendered report.
        let bytes_a = std::fs::read(&ja).expect("read reference journal");
        let bytes_b = std::fs::read(&jb).expect("read resumed journal");
        assert_eq!(
            bytes_a, bytes_b,
            "resumed journal must equal uninterrupted journal"
        );
        assert_eq!(
            second.report, full.report,
            "resumed report must equal uninterrupted report"
        );

        let _ = std::fs::remove_file(&ja);
        let _ = std::fs::remove_file(&jb);
    });
}

#[test]
fn two_interruptions_still_converge() {
    let cells = 6;
    let total = cells * targets().len();

    let ja = scratch("ref2");
    let mut opts = SoakOptions::new(targets(), &ja);
    opts.cells = cells;
    let full = run_soak(&opts).expect("reference soak");

    let jb = scratch("cut2");
    let mut cut = SoakOptions::new(targets(), &jb);
    cut.cells = cells;
    cut.stop_after = Some(3);
    run_soak(&cut).expect("first fragment");
    cut.resume = true;
    cut.stop_after = Some(4);
    let mid = run_soak(&cut).expect("second fragment");
    assert!(mid.interrupted);
    cut.stop_after = None;
    let last = run_soak(&cut).expect("final fragment");
    assert!(!last.interrupted);
    assert_eq!(last.journal_cells, total);

    assert_eq!(
        std::fs::read(&ja).expect("ref"),
        std::fs::read(&jb).expect("cut"),
        "three fragments must converge to the uninterrupted journal"
    );
    assert_eq!(last.report, full.report);
    let _ = std::fs::remove_file(&ja);
    let _ = std::fs::remove_file(&jb);
}

#[test]
fn poisoned_sweep_is_contained_and_degraded() {
    use fjs_core::supervise::PoisonMode;
    let j = scratch("poison");
    let mut opts = SoakOptions::new(vec![Target::Kind(SchedulerKind::Batch)], &j);
    opts.cells = 3;
    opts.poison = Some(PoisonMode::HangWakeups);
    opts.watchdog_events = 2_000;
    let summary = run_soak(&opts).expect("poisoned soak must not propagate");
    assert_eq!(
        summary.degraded, 3,
        "every poisoned cell is degraded, none kill the sweep"
    );
    assert!(summary.report.contains("timed-out"));
    let _ = std::fs::remove_file(&j);
}

#[test]
fn trace_soak_surfaces_ingest_stats() {
    let inst = fjs_core::job::Instance::new(vec![
        fjs_core::job::Job::adp(0.0, 2.0, 1.0),
        fjs_core::job::Job::adp(1.0, 3.0, 1.0),
    ]);
    let mut text = fjs_workloads::write_trace(&inst, None);
    text.push_str("this,line,is,not,a,record\n");
    let csv = scratch("trace").with_extension("csv");
    std::fs::write(&csv, text).expect("write trace");

    let j = scratch("trace-journal");
    let mut opts = SoakOptions::new(vec![Target::Kind(SchedulerKind::Batch)], &j);
    opts.trace = Some(csv.clone());
    let summary = run_soak(&opts).expect("trace soak");
    let ingest = summary.ingest.expect("trace mode reports ingest stats");
    assert_eq!(ingest.records, 2);
    assert_eq!(
        ingest.quarantined, 1,
        "the malformed line is quarantined, not fatal"
    );
    assert_eq!(summary.journal_cells, 1);
    assert_eq!(summary.degraded, 0);
    assert!(summary.report.contains("quarantined"));
    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&j);
}

/// `--resume` against a missing or empty journal must be a loud usage
/// error (exit 2), never a silent fresh run.
#[test]
fn binary_resume_with_missing_or_empty_journal_is_a_usage_error() {
    use std::process::Command;

    let bin = env!("CARGO_BIN_EXE_fjs");

    // Missing journal file.
    let missing = scratch("missing");
    let out = Command::new(bin)
        .args(["soak", "batch", "--resume", "--journal"])
        .arg(&missing)
        .output()
        .expect("run fjs soak --resume");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing to resume"), "{stderr}");
    assert!(
        stderr.contains("start without --resume"),
        "the error must say how to recover: {stderr}"
    );

    // Present but zero-length journal file.
    let empty = scratch("empty");
    std::fs::write(&empty, b"").expect("create empty journal");
    let out = Command::new(bin)
        .args(["soak", "batch", "--resume", "--journal"])
        .arg(&empty)
        .output()
        .expect("run fjs soak --resume on empty journal");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("nothing to resume"),
        "empty journal must be as loud as a missing one"
    );
    let _ = std::fs::remove_file(&empty);
}

/// End-to-end: the real binary, a real `SIGINT` mid-sweep, exit 0, then
/// `--resume` converging to the uninterrupted journal bytes.
#[cfg(unix)]
#[test]
fn binary_survives_sigint_and_resumes() {
    use std::process::Command;

    let bin = env!("CARGO_BIN_EXE_fjs");
    let j_cut = scratch("bin-cut");
    let j_ref = scratch("bin-ref");

    let mut child = Command::new(bin)
        .args([
            "soak",
            "batch",
            "--cells",
            "400",
            "--throttle-ms",
            "25",
            "--journal",
        ])
        .arg(&j_cut)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn fjs soak");
    std::thread::sleep(std::time::Duration::from_millis(900));
    let _ = Command::new("kill")
        .arg("-INT")
        .arg(child.id().to_string())
        .status();
    let status = child.wait().expect("wait for interrupted soak");
    assert!(status.success(), "SIGINT must exit 0, got {status}");

    let resume = Command::new(bin)
        .args(["soak", "batch", "--cells", "400", "--resume", "--journal"])
        .arg(&j_cut)
        .output()
        .expect("resume run");
    assert!(resume.status.success(), "resume must complete cleanly");

    let reference = Command::new(bin)
        .args(["soak", "batch", "--cells", "400", "--journal"])
        .arg(&j_ref)
        .output()
        .expect("reference run");
    assert!(reference.status.success());

    assert_eq!(
        std::fs::read(&j_cut).expect("cut journal"),
        std::fs::read(&j_ref).expect("ref journal"),
        "killed+resumed journal must equal the uninterrupted one"
    );
    assert_eq!(
        resume.stdout, reference.stdout,
        "reports must be bit-identical"
    );
    let _ = std::fs::remove_file(&j_cut);
    let _ = std::fs::remove_file(&j_ref);
}

/// Same SIGINT discipline under the sharded executor: a `--shards 4` sweep
/// interrupted by a real signal, resumed at `--shards 8`, must converge to
/// the byte-identical journal (and report) of a serial uninterrupted run.
#[cfg(unix)]
#[test]
fn binary_sharded_soak_survives_sigint_and_resumes() {
    use std::process::Command;

    let bin = env!("CARGO_BIN_EXE_fjs");
    let j_cut = scratch("bin-shard-cut");
    let j_ref = scratch("bin-shard-ref");

    let mut child = Command::new(bin)
        .args([
            "soak",
            "batch",
            "--cells",
            "300",
            "--shards",
            "4",
            "--throttle-ms",
            "10",
            "--journal",
        ])
        .arg(&j_cut)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn sharded fjs soak");
    std::thread::sleep(std::time::Duration::from_millis(700));
    let _ = Command::new("kill")
        .arg("-INT")
        .arg(child.id().to_string())
        .status();
    let status = child.wait().expect("wait for interrupted sharded soak");
    assert!(status.success(), "SIGINT must exit 0, got {status}");

    let resume = Command::new(bin)
        .args([
            "soak",
            "batch",
            "--cells",
            "300",
            "--shards",
            "8",
            "--resume",
            "--journal",
        ])
        .arg(&j_cut)
        .output()
        .expect("sharded resume run");
    assert!(resume.status.success(), "resume must complete cleanly");

    let reference = Command::new(bin)
        .args(["soak", "batch", "--cells", "300", "--journal"])
        .arg(&j_ref)
        .output()
        .expect("serial reference run");
    assert!(reference.status.success());

    assert_eq!(
        std::fs::read(&j_cut).expect("cut journal"),
        std::fs::read(&j_ref).expect("ref journal"),
        "sharded killed+resumed journal must equal the serial uninterrupted one"
    );
    assert_eq!(
        resume.stdout, reference.stdout,
        "reports must be bit-identical across shard counts and interruptions"
    );
    let _ = std::fs::remove_file(&j_cut);
    let _ = std::fs::remove_file(&j_ref);
}
