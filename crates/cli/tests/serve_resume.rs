//! Kill/resume and drain discipline for `fjs serve`, end to end against
//! the real binary: a daemon killed with `SIGKILL` mid-load and resumed
//! from its journal must reproduce the decision log of an uninterrupted
//! run byte for byte, and `SIGTERM` must drain gracefully (exit 0 with
//! every session's deltas flushed).

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// A unique temp path per call so tests don't collide.
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("fjs-serve-{tag}-{}-{n}", std::process::id()));
    p
}

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_fjs")
}

/// Emits the shared deterministic load script via `fjs loadgen --emit`.
fn emit_script(path: &PathBuf, jobs: u32) -> String {
    let out = Command::new(bin())
        .args([
            "loadgen",
            "--emit",
            path.to_str().expect("utf8 path"),
            "--sessions",
            "3",
            "--jobs",
            &jobs.to_string(),
            "--seed",
            "11",
            "--scheduler",
            "batch",
        ])
        .output()
        .expect("run fjs loadgen --emit");
    assert!(out.status.success(), "loadgen must succeed: {out:?}");
    std::fs::read_to_string(path).expect("read emitted script")
}

#[test]
fn loadgen_emit_is_deterministic_across_processes() {
    let a = scratch("emit-a");
    let b = scratch("emit-b");
    let sa = emit_script(&a, 50);
    let sb = emit_script(&b, 50);
    assert_eq!(sa, sb, "same seed must emit byte-identical scripts");
    assert!(sa.lines().any(|l| l.starts_with("open s0 batch")));
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

/// The tentpole acceptance test: SIGKILL mid-load, then `--resume`
/// replays the journal and re-reads the input tail, converging to the
/// byte-identical decision log of an uninterrupted run.
#[test]
fn sigkill_and_resume_reproduce_the_decision_log() {
    let script = scratch("kill-script");
    emit_script(&script, 200);

    // Reference: uninterrupted run.
    let ref_log = scratch("kill-ref-log");
    let ref_journal = scratch("kill-ref-journal");
    let reference = Command::new(bin())
        .args(["serve", "--input"])
        .arg(&script)
        .args(["--log"])
        .arg(&ref_log)
        .args(["--journal"])
        .arg(&ref_journal)
        .output()
        .expect("reference serve run");
    assert!(reference.status.success(), "{reference:?}");

    // Throttled run, killed hard mid-stream.
    let cut_log = scratch("kill-cut-log");
    let cut_journal = scratch("kill-cut-journal");
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--throttle-ms",
            "5",
            "--checkpoint-every",
            "1",
            "--input",
        ])
        .arg(&script)
        .args(["--log"])
        .arg(&cut_log)
        .args(["--journal"])
        .arg(&cut_journal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn throttled serve");
    std::thread::sleep(std::time::Duration::from_millis(400));
    let _ = Command::new("kill")
        .args(["-KILL", &child.id().to_string()])
        .status();
    let status = child.wait().expect("wait for killed serve");
    assert!(!status.success(), "SIGKILL must not exit cleanly");

    // Resume from the journal over the same input.
    let resumed = Command::new(bin())
        .args(["serve", "--resume", "--input"])
        .arg(&script)
        .args(["--log"])
        .arg(&cut_log)
        .args(["--journal"])
        .arg(&cut_journal)
        .output()
        .expect("resumed serve run");
    assert!(resumed.status.success(), "{resumed:?}");

    assert_eq!(
        std::fs::read(&ref_log).expect("reference log"),
        std::fs::read(&cut_log).expect("resumed log"),
        "killed+resumed decision log must equal the uninterrupted one"
    );

    for p in [&script, &ref_log, &ref_journal, &cut_log, &cut_journal] {
        let _ = std::fs::remove_file(p);
    }
}

/// `SIGTERM` is a graceful drain: stop admitting, close every session,
/// flush all deltas, exit 0 — even while blocked waiting on stdin.
#[test]
fn sigterm_drains_gracefully_with_flushed_deltas() {
    use std::io::Write;

    let log = scratch("drain-log");
    let mut child = Command::new(bin())
        .args(["serve", "--log"])
        .arg(&log)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stdin serve");
    {
        let stdin = child.stdin.as_mut().expect("child stdin");
        stdin
            .write_all(b"open a eager\njob a 0,5,1\njob a 1,9,2\n")
            .expect("feed requests");
        stdin.flush().expect("flush requests");
    }
    // Leave stdin open: only the signal can end this run.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let out = child.wait_with_output().expect("wait for drained serve");
    assert!(
        out.status.success(),
        "SIGTERM must drain and exit 0, got {:?} (stderr: {})",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );

    let log_text = std::fs::read_to_string(&log).expect("drained log");
    assert!(
        log_text.lines().any(|l| l.starts_with("a start ")),
        "deltas must be flushed: {log_text:?}"
    );
    assert!(
        log_text.lines().any(|l| l.starts_with("a close span=")),
        "drain must close the session: {log_text:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("peak") && stderr.contains("resident records"),
        "drain must report the bounded-memory figures: {stderr}"
    );
    let _ = std::fs::remove_file(&log);
}

/// `serve --resume` against a missing journal is a usage error (exit 2),
/// mirroring the `soak --resume` contract.
#[test]
fn serve_resume_with_missing_journal_is_a_usage_error() {
    let journal = scratch("missing-journal");
    let out = Command::new(bin())
        .args(["serve", "--resume", "--journal"])
        .arg(&journal)
        .args(["--input", "/dev/null"])
        .output()
        .expect("run serve --resume");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing to resume"), "{stderr}");
}
