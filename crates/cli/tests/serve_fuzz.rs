//! End-to-end chaos smoke against the real daemon binary.
//!
//! Spawns `fjs serve` on a unix socket with the governor active, runs the
//! seeded fuzz harness (torn frames, garbage, giant lines, partial
//! writes, disconnects, slow-loris, plus a hostile poison-tenant), then
//! checks the two resilience contracts from the design:
//!
//! 1. the daemon survives — the clean tenant saw only `ok` replies and a
//!    post-chaos probe schedules end-to-end;
//! 2. containment is perfect — the clean tenant's decision-log lines are
//!    byte-identical to a serial reference run of the same script.
//!
//! CI runs the same harness at full scale (10k frames, unix + TCP); this
//! is the in-tree guard at a few hundred frames.

#![cfg(unix)]

use std::process::{Command, Stdio};
use std::time::Duration;

use fjs_cli::fuzz::{run_fuzz_serve, FuzzServeOptions};
use fjs_cli::{run_script, DriveTarget, ServeOptions};

#[test]
fn chaos_run_leaves_daemon_healthy_and_clean_tenant_untouched() {
    let dir = std::env::temp_dir().join(format!("fjs-serve-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("fjs.sock");
    let log_path = dir.join("daemon.log");
    let clean_path = dir.join("clean.script");
    let _ = std::fs::remove_file(&socket);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_fjs"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--workers",
            "2",
            "--max-sessions",
            "256",
            "--breaker-threshold",
            "2",
            "--breaker-cooldown",
            "64",
            "--tenant-max-pending",
            "512",
            "--tenant-max-bytes",
            "262144",
            "--log",
            log_path.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fjs serve");

    let mut ready = false;
    for _ in 0..400 {
        if socket.exists() {
            ready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(ready, "daemon never bound {}", socket.display());

    let opts = FuzzServeOptions {
        targets: vec![DriveTarget::Unix(socket.clone())],
        seed: 1905,
        connections: 4,
        frames: 600,
        scheduler: "eager".into(),
        emit_clean: Some(clean_path.clone()),
    };
    let report = run_fuzz_serve(&opts).expect("harness-level failure");
    assert!(report.healthy(), "daemon degraded under chaos:\n{report}");
    assert!(
        report.frames_sent >= opts.frames,
        "frame budget not met: {report}"
    );

    // Graceful drain flushes the buffered decision log before exit.
    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exited {status}");

    // Clean-tenant containment: its log lines (sids `c0..c3`) must equal
    // a serial reference run of the emitted clean script, byte for byte,
    // no matter what the fuzz tenants did on neighbouring connections.
    let fuzz_log = std::fs::read_to_string(&log_path).unwrap();
    let clean_lines: String = fuzz_log
        .lines()
        .filter(|l| l.starts_with('c'))
        .map(|l| format!("{l}\n"))
        .collect();
    let script = std::fs::read_to_string(&clean_path).unwrap();
    let reference = run_script(&script, ServeOptions::default()).unwrap();
    assert_eq!(
        clean_lines, reference.log,
        "clean tenant's log must be byte-identical to a serial reference"
    );
    assert!(!reference.log.is_empty(), "reference run produced no log");

    std::fs::remove_dir_all(&dir).unwrap();
}
