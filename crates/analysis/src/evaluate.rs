//! Per-instance scheduler evaluation with OPT bracketing.
//!
//! For every `(scheduler, instance)` cell the harness reports the span
//! together with a lower and an upper bound on the optimal span, so each
//! competitive-ratio estimate comes as a bracket:
//!
//! `span / ub  ≤  true ratio on this instance  ≤  span / lb`.

use fjs_core::job::Instance;
use fjs_core::time::Dur;
use fjs_schedulers::SchedulerKind;

/// Evaluation of one scheduler on one instance.
#[derive(Clone, Copy, Debug)]
pub struct Evaluation {
    /// The scheduler's span.
    pub span: Dur,
    /// Certified lower bound on OPT (`fjs-opt` bounds).
    pub opt_lb: Dur,
    /// Feasible upper bound on OPT (coordinate descent).
    pub opt_ub: Dur,
    /// Whether the run was feasible (no forced starts).
    pub feasible: bool,
}

impl Evaluation {
    /// Pessimistic ratio estimate `span / opt_lb` (overestimates).
    pub fn ratio_vs_lb(&self) -> f64 {
        self.span.ratio(self.opt_lb)
    }

    /// Optimistic ratio estimate `span / opt_ub` (underestimates; still a
    /// valid lower bound on the instance ratio because `opt_ub ≥ OPT`).
    pub fn ratio_vs_ub(&self) -> f64 {
        self.span.ratio(self.opt_ub)
    }
}

/// Runs one scheduler on one instance and brackets OPT.
///
/// `descent_passes` controls the upper-bound effort (0 disables descent and
/// uses the better of the arrival/deadline schedules).
pub fn evaluate(kind: SchedulerKind, inst: &Instance, descent_passes: usize) -> Evaluation {
    let out = kind.run_on(inst);
    let opt_lb = fjs_opt::best_lower_bound(inst);
    let opt_ub = fjs_opt::upper_bound_span(inst, descent_passes).span;
    Evaluation {
        span: out.span,
        opt_lb,
        opt_ub,
        feasible: out.is_feasible(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;

    #[test]
    fn bracket_is_consistent() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 4.0, 2.0),
            Job::adp(1.0, 6.0, 1.0),
            Job::adp(5.0, 5.0, 2.0),
        ]);
        for kind in SchedulerKind::full_set() {
            let ev = evaluate(kind, &inst, 20);
            assert!(ev.feasible, "{}", kind.label());
            assert!(ev.opt_lb <= ev.opt_ub, "{}", kind.label());
            assert!(
                ev.span >= ev.opt_lb,
                "{}: online below OPT lower bound?!",
                kind.label()
            );
            assert!(ev.ratio_vs_ub() <= ev.ratio_vs_lb() + 1e-12);
            assert!(ev.ratio_vs_ub() >= 1.0 - 1e-9, "{}", kind.label());
        }
    }

    #[test]
    fn exact_bracket_on_tiny_integer_instance() {
        let inst = Instance::new(vec![Job::adp(0.0, 4.0, 2.0), Job::adp(4.0, 8.0, 3.0)]);
        let ev = evaluate(SchedulerKind::BatchPlus, &inst, 50);
        let exact = fjs_opt::optimal_span_dp(&inst).unwrap();
        assert!(ev.opt_lb <= exact && exact <= ev.opt_ub);
    }
}
