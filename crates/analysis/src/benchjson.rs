//! Machine-readable benchmark records (`BENCH_results.json`).
//!
//! The bench targets in `fjs-bench` emit [`BenchSample`] records and
//! serialize them through [`BenchReport`] into a stable JSON schema, so a
//! later revision can prove a speedup (or catch a regression) with
//! `fjs bench-diff old.json new.json`. The workspace builds offline, so
//! both the serializer and the parser are hand-rolled here — the parser
//! covers exactly the JSON subset the serializer emits (objects, arrays,
//! strings, finite numbers, booleans, null).
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "git_describe": "cfe0d03-dirty",
//!   "cases": [
//!     {
//!       "name": "interval-set/union-measure/1000",
//!       "median_s": 1.84e-5,
//!       "min_s": 1.79e-5,
//!       "mean_s": 1.91e-5,
//!       "iters": 4348,
//!       "samples": 12
//!     }
//!   ]
//! }
//! ```
//!
//! Case names are unique; re-serializing a report a target has merged into
//! replaces same-name cases and keeps the rest, so the three bench binaries
//! can share one output file. All times are seconds per iteration.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The schema version this module reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// One benchmark case: per-iteration timing statistics.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchSample {
    /// Unique case name, e.g. `scheduler-throughput/Batch/1000`.
    pub name: String,
    /// Median seconds per iteration across samples.
    pub median_s: f64,
    /// Minimum seconds per iteration across samples.
    pub min_s: f64,
    /// Mean seconds per iteration across samples.
    pub mean_s: f64,
    /// Iterations per sample (chosen by warm-up calibration).
    pub iters: usize,
    /// Number of timed samples.
    pub samples: usize,
}

/// A full benchmark report: every case measured by a bench run, plus the
/// provenance needed to compare across revisions.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this code).
    pub schema_version: u64,
    /// `git describe --always --dirty` of the measured tree, or
    /// `"unknown"` outside a git checkout.
    pub git_describe: String,
    /// All cases, in insertion order.
    pub cases: Vec<BenchSample>,
}

impl BenchReport {
    /// An empty report at the current schema version.
    pub fn new(git_describe: impl Into<String>) -> Self {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_describe: git_describe.into(),
            cases: Vec::new(),
        }
    }

    /// Adds `sample`, replacing any existing case with the same name (so
    /// bench targets can merge into a shared file).
    pub fn upsert(&mut self, sample: BenchSample) {
        match self.cases.iter_mut().find(|c| c.name == sample.name) {
            Some(slot) => *slot = sample,
            None => self.cases.push(sample),
        }
    }

    /// Looks a case up by name.
    pub fn case(&self, name: &str) -> Option<&BenchSample> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Checks the report against the schema: supported version, unique
    /// case names, finite non-negative times, positive iteration counts.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {} (expected {SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        let mut seen = BTreeMap::new();
        for c in &self.cases {
            if let Some(()) = seen.insert(c.name.clone(), ()) {
                return Err(format!("duplicate case name '{}'", c.name));
            }
            for (label, v) in [
                ("median_s", c.median_s),
                ("min_s", c.min_s),
                ("mean_s", c.mean_s),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "case '{}': {label} = {v} is not a valid time",
                        c.name
                    ));
                }
            }
            if c.iters == 0 || c.samples == 0 {
                return Err(format!("case '{}': iters/samples must be positive", c.name));
            }
        }
        Ok(())
    }

    /// Serializes to the schema above (pretty-printed, stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(
            out,
            "  \"git_describe\": \"{}\",",
            escape(&self.git_describe)
        );
        out.push_str("  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"median_s\": {}, \"min_s\": {}, \"mean_s\": {}, \
                 \"iters\": {}, \"samples\": {}}}",
                escape(&c.name),
                fmt_f64(c.median_s),
                fmt_f64(c.min_s),
                fmt_f64(c.mean_s),
                c.iters,
                c.samples,
            );
        }
        if !self.cases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report and validates it against the schema.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object("report")?;
        let schema_version = get(obj, "schema_version")?.as_u64("schema_version")?;
        let git_describe = get(obj, "git_describe")?
            .as_str("git_describe")?
            .to_string();
        let mut cases = Vec::new();
        for (i, item) in get(obj, "cases")?.as_array("cases")?.iter().enumerate() {
            let c = item.as_object(&format!("cases[{i}]"))?;
            cases.push(BenchSample {
                name: get(c, "name")?.as_str("name")?.to_string(),
                median_s: get(c, "median_s")?.as_f64("median_s")?,
                min_s: get(c, "min_s")?.as_f64("min_s")?,
                mean_s: get(c, "mean_s")?.as_f64("mean_s")?,
                iters: get(c, "iters")?.as_u64("iters")? as usize,
                samples: get(c, "samples")?.as_u64("samples")? as usize,
            });
        }
        let report = BenchReport {
            schema_version,
            git_describe,
            cases,
        };
        report.validate()?;
        Ok(report)
    }
}

/// One aligned case in a [`BenchDiff`].
#[derive(Clone, PartialEq, Debug)]
pub struct CaseDelta {
    /// Case name present in both reports.
    pub name: String,
    /// Median seconds per iteration in the old report.
    pub old_median_s: f64,
    /// Median seconds per iteration in the new report.
    pub new_median_s: f64,
}

impl CaseDelta {
    /// `new / old` median ratio; `1.0` means unchanged, `2.0` a 2× slowdown.
    /// Zero-time old cases compare as `1.0` when new is also zero,
    /// `f64::INFINITY` otherwise.
    pub fn ratio(&self) -> f64 {
        if self.old_median_s > 0.0 {
            self.new_median_s / self.old_median_s
        } else if self.new_median_s == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    }

    /// Relative change `ratio − 1` (`+0.25` = 25 % slower, `−0.10` = 10 %
    /// faster).
    pub fn relative_change(&self) -> f64 {
        self.ratio() - 1.0
    }
}

/// The alignment of two [`BenchReport`]s by case name.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchDiff {
    /// Cases present in both reports, in the new report's order.
    pub aligned: Vec<CaseDelta>,
    /// Case names only in the old report.
    pub only_old: Vec<String>,
    /// Case names only in the new report.
    pub only_new: Vec<String>,
}

impl BenchDiff {
    /// Aligned cases whose median regressed by more than `threshold`
    /// (e.g. `0.2` flags ratios above 1.2).
    pub fn regressions(&self, threshold: f64) -> Vec<&CaseDelta> {
        self.aligned
            .iter()
            .filter(|d| d.relative_change() > threshold)
            .collect()
    }
}

/// Aligns two reports by case name.
pub fn diff_reports(old: &BenchReport, new: &BenchReport) -> BenchDiff {
    let aligned = new
        .cases
        .iter()
        .filter_map(|n| {
            old.case(&n.name).map(|o| CaseDelta {
                name: n.name.clone(),
                old_median_s: o.median_s,
                new_median_s: n.median_s,
            })
        })
        .collect();
    let only_old = old
        .cases
        .iter()
        .filter(|o| new.case(&o.name).is_none())
        .map(|o| o.name.clone())
        .collect();
    let only_new = new
        .cases
        .iter()
        .filter(|n| old.case(&n.name).is_none())
        .map(|n| n.name.clone())
        .collect();
    BenchDiff {
        aligned,
        only_old,
        only_new,
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` so it round-trips through [`Json::parse`]
/// (Rust's `{:?}` for `f64` is the shortest round-trip representation).
/// Non-finite values serialize as `0` — the schema forbids them anyway.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".into()
    }
}

/// A parsed JSON value (the subset this module emits).
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip exactly to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(format!("{what}: expected an object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected an array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("{what}: expected a number, got {other:?}")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        let n = self.as_f64(what)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Ok(n as u64)
        } else {
            Err(format!("{what}: expected a non-negative integer, got {n}"))
        }
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, median: f64) -> BenchSample {
        BenchSample {
            name: name.into(),
            median_s: median,
            min_s: median * 0.9,
            mean_s: median * 1.1,
            iters: 100,
            samples: 12,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("abc123-dirty");
        report.upsert(sample("a/b/1000", 1.5e-5));
        report.upsert(sample("quoted \"name\" \\ tab\t", 2.0));
        let json = report.to_json();
        let back = BenchReport::parse(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = BenchReport::new("unknown");
        let back = BenchReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(back.cases.is_empty());
    }

    #[test]
    fn upsert_replaces_same_name() {
        let mut report = BenchReport::new("x");
        report.upsert(sample("case", 1.0));
        report.upsert(sample("other", 5.0));
        report.upsert(sample("case", 2.0));
        assert_eq!(report.cases.len(), 2);
        assert_eq!(report.case("case").unwrap().median_s, 2.0);
    }

    #[test]
    fn validate_rejects_bad_reports() {
        let mut report = BenchReport::new("x");
        report.upsert(sample("a", 1.0));
        assert!(report.validate().is_ok());

        let mut wrong_version = report.clone();
        wrong_version.schema_version = 99;
        assert!(wrong_version
            .validate()
            .unwrap_err()
            .contains("schema_version"));

        let mut dup = report.clone();
        dup.cases.push(sample("a", 2.0)); // bypasses upsert
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut negative = report.clone();
        negative.cases[0].median_s = -1.0;
        assert!(negative.validate().unwrap_err().contains("median_s"));

        let mut zero_iters = report;
        zero_iters.cases[0].iters = 0;
        assert!(zero_iters.validate().unwrap_err().contains("iters"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}")
            .unwrap_err()
            .contains("schema_version"));
        assert!(BenchReport::parse("{\"schema_version\": 1}").is_err());
        // Trailing garbage is an error, not silently ignored.
        let good = BenchReport::new("x").to_json();
        assert!(BenchReport::parse(&format!("{good} extra")).is_err());
    }

    #[test]
    fn diff_aligns_by_name_and_flags_regressions() {
        let mut old = BenchReport::new("old");
        old.upsert(sample("same", 1.0));
        old.upsert(sample("slower", 1.0));
        old.upsert(sample("gone", 1.0));
        let mut new = BenchReport::new("new");
        new.upsert(sample("same", 1.0));
        new.upsert(sample("slower", 2.5));
        new.upsert(sample("fresh", 1.0));

        let diff = diff_reports(&old, &new);
        assert_eq!(diff.aligned.len(), 2);
        assert_eq!(diff.only_old, vec!["gone".to_string()]);
        assert_eq!(diff.only_new, vec!["fresh".to_string()]);

        let regressions = diff.regressions(0.2);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "slower");
        assert!((regressions[0].ratio() - 2.5).abs() < 1e-12);

        // Self-compare: zero regressions at any positive threshold.
        let self_diff = diff_reports(&new, &new);
        assert!(self_diff.regressions(0.0).is_empty());
        assert!(self_diff.only_old.is_empty() && self_diff.only_new.is_empty());
    }

    #[test]
    fn f64_formatting_round_trips_extremes() {
        for v in [0.0, 1.5e-9, std::f64::consts::PI, 1e300, 123456.0] {
            let text = fmt_f64(v);
            let parsed: f64 = text.parse().unwrap();
            assert_eq!(parsed, v, "{text}");
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
    }

    #[test]
    fn json_parser_handles_escapes_and_unicode() {
        let v = Json::parse(r#"{"k": "a\"b\\c\ndAµ", "n": [1, -2.5e3, true, null]}"#).unwrap();
        let obj = v.as_object("v").unwrap();
        assert_eq!(get(obj, "k").unwrap().as_str("k").unwrap(), "a\"b\\c\ndAµ");
        let arr = get(obj, "n").unwrap().as_array("n").unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].as_f64("n[1]").unwrap(), -2500.0);
    }
}
