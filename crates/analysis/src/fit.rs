//! Convergence diagnostics: least-squares fits quantifying how fast a
//! measured ratio sequence approaches its theoretical limit.
//!
//! The paper's tightness families satisfy `ratio(m) = L − c/m + o(1/m)`
//! (e.g. Figure 3: `m(μ+1−ε)/(m+μ) = (μ+1−ε) − μ(μ+1−ε)/(m+μ)`), so
//! regressing the measured ratios on `1/m` recovers the limit `L` as the
//! intercept — a sharper check than eyeballing the largest `m`.

/// An affine least-squares fit `y ≈ a + b·x`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AffineFit {
    /// Intercept.
    pub a: f64,
    /// Slope.
    pub b: f64,
    /// Coefficient of determination in `[0, 1]` (1 for ≥2 points on a line;
    /// defined as 1 when the response is constant).
    pub r2: f64,
}

/// Ordinary least squares for `y ≈ a + b·x`.
///
/// # Panics
/// Panics unless `xs` and `ys` have equal length ≥ 2 and `xs` are not all
/// identical.
pub fn fit_affine(xs: &[f64], ys: &[f64]) -> AffineFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values must not be all identical");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    let a = my - b * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (a + b * x)) * (y - (a + b * x)))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    AffineFit { a, b, r2 }
}

/// Fits `ratio(m) ≈ L + c/m` and returns the estimated limit `L`, the
/// first-order coefficient `c` and the fit quality.
///
/// # Panics
/// Panics unless at least two distinct positive `ms` are given.
pub fn convergence_limit(ms: &[f64], ratios: &[f64]) -> AffineFit {
    assert!(ms.iter().all(|&m| m > 0.0), "scales must be positive");
    let xs: Vec<f64> = ms.iter().map(|&m| 1.0 / m).collect();
    fit_affine(&xs, ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 - 0.5 * x).collect();
        let f = fit_affine(&xs, &ys);
        assert!((f.a - 2.5).abs() < 1e-12);
        assert!((f.b + 0.5).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_response_has_unit_r2() {
        let f = fit_affine(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(f.a, 4.0);
        assert_eq!(f.b, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn convergence_recovers_paper_limit() {
        // The exact Figure 3 ratio law: m(μ+1−ε)/(m+μ) with μ=4, ε→0.
        let mu = 4.0;
        let ms: Vec<f64> = vec![32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];
        let ratios: Vec<f64> = ms.iter().map(|m| m * (mu + 1.0) / (m + mu)).collect();
        let f = convergence_limit(&ms, &ratios);
        // The law is L − Lμ/(m+μ), not exactly affine in 1/m, but for
        // large m the intercept estimate lands within 1% of μ+1 = 5.
        assert!((f.a - (mu + 1.0)).abs() < 0.05, "estimated limit {}", f.a);
        assert!(f.b < 0.0, "approach from below");
        assert!(f.r2 > 0.99, "r² = {}", f.r2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        let _ = fit_affine(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_rejected() {
        let _ = fit_affine(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
