//! # fjs-analysis
//!
//! The experiment harness: per-instance scheduler evaluation with OPT
//! bracketing ([`evaluate()`]), thread-parallel parameter sweeps
//! ([`sweep`]), summary statistics ([`stats`]), text/CSV table rendering
//! ([`table`]) and the machine-readable benchmark record schema
//! ([`benchjson`]). The `fjs-cli` crate composes these into the experiments
//! E1–E11 documented in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchjson;
pub mod evaluate;
pub mod fit;
pub mod gantt;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod timing;

pub use benchjson::{diff_reports, BenchDiff, BenchReport, BenchSample, CaseDelta};
pub use evaluate::{evaluate, Evaluation};
pub use fit::{convergence_limit, fit_affine, AffineFit};
pub use gantt::{render_busy_strip, render_gantt, GanttOptions};
pub use stats::Summary;
pub use sweep::{grid2, parallel_map, sharded_map, ShardPlan};
pub use table::{f2, f3, Table};
pub use timing::{time_case, time_case_sample};
