//! Minimal text/CSV table rendering for experiment reports (keeps the
//! workspace free of serialization dependencies).

use std::fmt::Write as _;

/// A rectangular table with a title and column headers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each must match the header arity).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience for rows of displayable cells.
    pub fn row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders an aligned monospace table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                let _ = write!(line, " {}{} |", cell, " ".repeat(pad));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats an `f64` with 3 decimals (the workhorse for report cells).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an `f64` with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("| name  | value |"));
        assert!(r.contains("| alpha | 1     |"));
        assert!(r.contains("|-------|-------|"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.0), "1.00");
    }
}
