//! ASCII Gantt rendering of schedules — makes the batching structure of
//! the paper's algorithms visible in a terminal.
//!
//! ```text
//! J0 |   ██████                      | [a=0, d=5] p=2
//! J1 |     █████████                 | [a=1, d=9] p=3
//!    +-------------------------------+
//!     0                            14
//! ```

use fjs_core::job::Instance;
use fjs_core::schedule::Schedule;
use fjs_core::time::Time;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Show the job window `[a, d]` and length annotations.
    pub annotate: bool,
    /// Cap on the number of jobs rendered (the rest are summarized).
    pub max_jobs: usize,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 64,
            annotate: true,
            max_jobs: 40,
        }
    }
}

/// Renders a (possibly partial) schedule as an ASCII Gantt chart. Jobs are
/// shown in id order; `░` marks the waiting part of the window (arrival to
/// start) and `█` the active interval.
pub fn render_gantt(inst: &Instance, schedule: &Schedule, opts: GanttOptions) -> String {
    assert!(opts.width >= 8, "axis too narrow");
    if inst.is_empty() {
        return "(empty instance)\n".to_string();
    }
    let t0 = inst.first_arrival().expect("non-empty").get();
    let t1 = inst
        .iter()
        .filter_map(|(id, job)| schedule.start(id).map(|s| (s + job.length()).get()))
        .fold(inst.horizon().expect("non-empty").get(), f64::max);
    let scale = if t1 > t0 {
        (opts.width - 1) as f64 / (t1 - t0)
    } else {
        1.0
    };
    let col = |t: f64| -> usize { (((t - t0) * scale).round() as usize).min(opts.width - 1) };

    let shown = inst.len().min(opts.max_jobs);
    let label_w = format!("J{}", inst.len() - 1).len().max(2);
    let mut out = String::new();
    for (id, job) in inst.iter().take(shown) {
        let mut lane = vec![' '; opts.width];
        match schedule.start(id) {
            Some(s) => {
                // Waiting segment: arrival → start.
                for cell in lane
                    .iter_mut()
                    .take(col(s.get()))
                    .skip(col(job.arrival().get()))
                {
                    *cell = '░';
                }
                let lo = col(s.get());
                let hi = col((s + job.length()).get()).max(lo + 1);
                for cell in lane.iter_mut().take(hi.min(opts.width)).skip(lo) {
                    *cell = '█';
                }
            }
            None => {
                // Unstarted: show the window only.
                let lo = col(job.arrival().get());
                let hi = col(job.deadline().get()).max(lo + 1);
                for cell in lane.iter_mut().take(hi.min(opts.width)).skip(lo) {
                    *cell = '·';
                }
            }
        }
        let lane: String = lane.into_iter().collect();
        let _ = write!(out, "{:>label_w$} |{}|", format!("J{}", id.0), lane);
        if opts.annotate {
            let _ = write!(
                out,
                " [a={}, d={}] p={}",
                trim(job.arrival().get()),
                trim(job.deadline().get()),
                trim(job.length().get())
            );
        }
        out.push('\n');
    }
    if shown < inst.len() {
        let _ = writeln!(out, "{:>label_w$} … ({} more jobs)", "", inst.len() - shown);
    }
    let _ = writeln!(out, "{:>label_w$} +{}+", "", "-".repeat(opts.width));
    let left = trim(t0);
    let right = trim(t1);
    let pad = opts.width.saturating_sub(left.len() + right.len());
    let _ = writeln!(
        out,
        "{:>label_w$}  {}{}{}",
        "",
        left,
        " ".repeat(pad),
        right
    );
    out
}

/// Renders the busy/idle strip of the whole schedule on one line.
pub fn render_busy_strip(inst: &Instance, schedule: &Schedule, width: usize) -> String {
    assert!(width >= 8, "strip too narrow");
    if inst.is_empty() {
        return String::new();
    }
    let busy = schedule.busy_set(inst);
    let t0 = inst.first_arrival().expect("non-empty").get();
    let t1 = busy.hi().map_or(t0 + 1.0, |h| h.get());
    let scale = if t1 > t0 {
        (t1 - t0) / width as f64
    } else {
        1.0
    };
    (0..width)
        .map(|i| {
            let mid = t0 + (i as f64 + 0.5) * scale;
            if busy.contains(Time::new(mid)) {
                '█'
            } else {
                '·'
            }
        })
        .collect()
}

fn trim(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::{Job, JobId};
    use fjs_core::time::t;

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::new(vec![Job::adp(0.0, 5.0, 2.0), Job::adp(1.0, 9.0, 3.0)]);
        let s = Schedule::from_starts(2, [(JobId(0), t(3.0)), (JobId(1), t(3.0))]);
        (inst, s)
    }

    #[test]
    fn renders_all_jobs_with_bars() {
        let (inst, s) = setup();
        let g = render_gantt(&inst, &s, GanttOptions::default());
        assert!(g.contains("J0"));
        assert!(g.contains("J1"));
        assert!(g.contains('█'));
        assert!(g.contains('░'), "waiting segment shown");
        assert!(g.contains("p=2"));
    }

    #[test]
    fn partial_schedules_show_windows() {
        let (inst, _) = setup();
        let partial = Schedule::with_len(2);
        let g = render_gantt(&inst, &partial, GanttOptions::default());
        assert!(g.contains('·'), "unstarted job windows rendered as dots");
        assert!(!g.contains('█'));
    }

    #[test]
    fn busy_strip_marks_active_region() {
        let (inst, s) = setup();
        let strip = render_busy_strip(&inst, &s, 30);
        assert_eq!(strip.chars().count(), 30);
        assert!(strip.contains('█'));
        assert!(strip.contains('·'));
    }

    #[test]
    fn truncates_many_jobs() {
        let jobs: Vec<Job> = (0..50).map(|i| Job::adp(i as f64, i as f64, 1.0)).collect();
        let inst = Instance::new(jobs);
        let sched = Schedule::from_starts(50, (0..50u32).map(|i| (JobId(i), t(i as f64))));
        let g = render_gantt(
            &inst,
            &sched,
            GanttOptions {
                max_jobs: 10,
                ..Default::default()
            },
        );
        assert!(g.contains("40 more jobs"));
    }

    #[test]
    fn empty_instance() {
        let g = render_gantt(
            &Instance::empty(),
            &Schedule::with_len(0),
            GanttOptions::default(),
        );
        assert!(g.contains("empty"));
    }
}
