//! Summary statistics over experiment replications.

/// Mean / min / max / standard deviation of a sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample standard deviation (`n−1` denominator; 0 for `n ≤ 1`).
    pub std: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let std = if n <= 1 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary {
            n,
            mean,
            min,
            max,
            std,
        }
    }

    /// `mean ± std` rendering.
    pub fn pm(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample std of 1..4 = sqrt(5/3).
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn singleton_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn pm_format() {
        assert_eq!(Summary::of(&[2.0, 2.0]).pm(), "2.000 ± 0.000");
    }
}
