//! The timing harness behind every benchmark in the workspace: the bench
//! targets in `fjs-bench` and the `fjs bench` subcommand share these
//! calibrated measurement loops, so their [`crate::benchjson`] records are
//! directly comparable.

use crate::benchjson::BenchSample;
use std::time::Instant;

/// Whether quick mode is on (`FJS_BENCH_QUICK` set non-empty, not `0`):
/// bench targets shrink their input sizes and the harness shrinks sample
/// counts, so CI can smoke the full pipeline in seconds.
pub fn quick() -> bool {
    std::env::var("FJS_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Times `f` and returns the measurement as a [`BenchSample`] record.
///
/// Calibration: the closure is first *warmed up* (population of caches,
/// branch predictors, lazy allocations), then the per-sample iteration
/// count is derived from the **minimum of ≥3 post-warm-up probes** — a
/// single cold probe runs slow and would overshoot `iters`, inflating
/// sample times on short cases. The chosen `iters` is surfaced in the
/// returned record.
///
/// A tiny fixed-iteration harness, good enough for the coarse regressions
/// these targets guard; it deliberately trades Criterion's statistics for
/// a dependency-free build.
pub fn time_case_sample<R>(name: &str, mut f: impl FnMut() -> R) -> BenchSample {
    let (samples, target_sample_ms, probes) = if quick() { (4, 5.0, 3) } else { (12, 80.0, 3) };

    // Warm up: one untimed call, discarded.
    std::hint::black_box(f());

    // Calibrate from the fastest of several post-warm-up probes.
    let mut probe_min = f64::INFINITY;
    for _ in 0..probes {
        let t0 = Instant::now();
        std::hint::black_box(f());
        probe_min = probe_min.min(t0.elapsed().as_secs_f64());
    }
    let probe_min = probe_min.max(1e-9);
    let iters = ((target_sample_ms / 1e3 / probe_min).ceil() as usize).clamp(1, 1_000_000);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    BenchSample {
        name: name.to_string(),
        median_s: median,
        min_s: min,
        mean_s: mean,
        iters,
        samples,
    }
}

/// Times `f`, prints one aligned report line (median / min / mean per
/// iteration) and returns the record. Convenience wrapper over
/// [`time_case_sample`] used by all bench targets.
pub fn time_case<R>(name: &str, f: impl FnMut() -> R) -> BenchSample {
    let sample = time_case_sample(name, f);
    println!(
        "{name:<44} median {:>12}  min {:>12}  mean {:>12}  ({} it/sample)",
        fmt_duration(sample.median_s),
        fmt_duration(sample.min_s),
        fmt_duration(sample.mean_s),
        sample.iters,
    );
    sample
}

/// Human-friendly seconds formatting (ns/µs/ms/s).
pub fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sane_units() {
        assert!(fmt_duration(5e-9).ends_with("ns"));
        assert!(fmt_duration(5e-6).ends_with("µs"));
        assert!(fmt_duration(5e-3).ends_with("ms"));
        assert!(fmt_duration(5.0).ends_with("s"));
    }

    #[test]
    fn time_case_runs_the_closure_and_surfaces_calibration() {
        let mut calls = 0usize;
        let sample = time_case("noop", || calls += 1);
        // 1 warm-up + ≥3 probes + samples×iters timed calls.
        assert!(calls >= 1 + 3 + sample.samples * sample.iters);
        assert_eq!(sample.name, "noop");
        assert!(sample.iters >= 1);
        assert!(sample.samples >= 1);
        assert!(sample.min_s <= sample.median_s);
        assert!(sample.min_s >= 0.0 && sample.median_s.is_finite());
    }
}
