//! Parallel parameter sweeps.
//!
//! Experiments are embarrassingly parallel across `(instance, scheduler,
//! seed)` cells; [`sharded_map`] fans the work out over a `std::thread`
//! scope with a configurable shard count ([`ShardPlan`]), each shard
//! claiming cell indices from a shared atomic counter (work stealing
//! without per-item channel traffic). Results come back in input order, so
//! the output is **bit-identical for every shard count** — 1, 2, 8 or
//! one-per-core all produce the serial answer. [`parallel_map`] is the
//! auto-sharded convenience wrapper the experiments use;
//! [`sharded_map_rng`] adds a per-cell `fjs-prng` stream derived from the
//! plan's base seed, again independent of the shard count.

use fjs_prng::check::case_seed;
use fjs_prng::SmallRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a sweep's cells are spread over worker shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardPlan {
    /// Number of worker shards; `0` means one per available core. The
    /// result of a sharded sweep never depends on this — it only trades
    /// wall-clock for cores.
    pub shards: usize,
    /// Base seed for the per-cell PRNG streams handed out by
    /// [`sharded_map_rng`]; unused by [`sharded_map`].
    pub seed: u64,
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::auto()
    }
}

impl ShardPlan {
    /// One shard per available core (the `parallel_map` behaviour).
    pub fn auto() -> Self {
        ShardPlan { shards: 0, seed: 0 }
    }

    /// An explicit shard count (`0` = auto). `1` is guaranteed to run the
    /// plain serial loop on the calling thread.
    pub fn with_shards(shards: usize) -> Self {
        ShardPlan { shards, seed: 0 }
    }

    /// Sets the base seed for [`sharded_map_rng`] streams.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The concrete worker count for `n` items.
    fn resolve(&self, n: usize) -> usize {
        let shards = match self.shards {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            s => s,
        };
        shards.min(n)
    }
}

/// Applies `f` to every item over `plan.shards` work-stealing shards and
/// returns the results in input order. `f` must be `Sync` (shared
/// read-only across shards).
///
/// Each shard pulls the next unclaimed item index from a shared atomic
/// counter, so an expensive cell never stalls the whole sweep behind one
/// shard; the merge reassembles results by input index, making the output
/// a pure function of `(items, f)` regardless of the shard count.
///
/// ```
/// use fjs_analysis::{sharded_map, ShardPlan};
///
/// let squares = sharded_map(&[1u64, 2, 3, 4], ShardPlan::with_shards(2), |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn sharded_map<T, R, F>(items: &[T], plan: ShardPlan, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = plan.resolve(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Classic index-claiming, kept fully safe: each shard collects
    // (index, result) pairs locally and the merge writes them back into
    // input-order slots afterwards.
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    for bucket in buckets {
        for (i, r) in bucket {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// [`sharded_map`] where every cell additionally receives its own
/// [`SmallRng`] stream.
///
/// The stream for item `i` is seeded `case_seed(plan.seed, i)` — a function
/// of the *item index*, never of the shard that happens to run it — so any
/// randomized work inside a cell is reproducible and bit-identical across
/// shard counts. Each shard reuses one `SmallRng` object and reseeds it per
/// claimed cell.
pub fn sharded_map_rng<T, R, F>(items: &[T], plan: ShardPlan, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut SmallRng) -> R + Sync,
{
    let seed = plan.seed;
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    sharded_map(&indexed, plan, move |&(i, item)| {
        let mut rng = SmallRng::seed_from_u64(case_seed(seed, i));
        f(item, &mut rng)
    })
}

/// Applies `f` to every item on a worker pool (one shard per core) and
/// returns the results in input order. `f` must be `Sync` (shared
/// read-only across workers). Equivalent to [`sharded_map`] with
/// [`ShardPlan::auto`].
///
/// ```
/// use fjs_analysis::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    sharded_map(items, ShardPlan::auto(), f)
}

/// Cartesian product helper for two parameter axes.
pub fn grid2<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map::<u32, u32, _>(&[], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn heavy_closure_with_shared_state() {
        // The closure reads shared data; results must still be correct.
        let table: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| table[i]);
        assert_eq!(out, table);
    }

    #[test]
    fn grid_product() {
        let g = grid2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[5], (2, "c"));
    }

    #[test]
    fn sharded_map_is_shard_count_invariant() {
        let items: Vec<u64> = (0..257).collect();
        let serial = sharded_map(&items, ShardPlan::with_shards(1), |&x| {
            x.wrapping_mul(x) ^ 7
        });
        for shards in [0usize, 2, 3, 8, 64] {
            let out = sharded_map(&items, ShardPlan::with_shards(shards), |&x| {
                x.wrapping_mul(x) ^ 7
            });
            assert_eq!(out, serial, "shards={shards}");
        }
    }

    #[test]
    fn sharded_map_rng_streams_are_per_item_not_per_shard() {
        let items: Vec<u64> = (0..64).collect();
        let draw = |&x: &u64, rng: &mut fjs_prng::SmallRng| x ^ rng.next_u64();
        let serial = sharded_map_rng(&items, ShardPlan::with_shards(1).seeded(9), draw);
        for shards in [2usize, 8] {
            let out = sharded_map_rng(&items, ShardPlan::with_shards(shards).seeded(9), draw);
            assert_eq!(out, serial, "shards={shards}");
        }
        // A different base seed must change the streams.
        let other = sharded_map_rng(&items, ShardPlan::with_shards(2).seeded(10), draw);
        assert_ne!(other, serial);
    }

    #[test]
    fn oversubscribed_shard_counts_clamp_to_items() {
        let out = sharded_map(&[1u32, 2], ShardPlan::with_shards(16), |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
