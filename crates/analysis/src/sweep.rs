//! Parallel parameter sweeps.
//!
//! Experiments are embarrassingly parallel across `(instance, scheduler,
//! seed)` cells; [`parallel_map`] fans the work out over a `std::thread`
//! scope with one worker per core, pulling indices from a shared atomic
//! counter (work stealing without per-item channel traffic). Results come
//! back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on a worker pool and returns the results in
/// input order. `f` must be `Sync` (shared read-only across workers).
///
/// ```
/// use fjs_analysis::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Hand each worker a disjoint view of the result slots. We give every
    // worker the whole slice through a raw pointer wrapper and rely on the
    // atomic counter for disjointness; this is the classic index-claiming
    // pattern, kept safe here by routing writes through a Mutex-free cell
    // per index via `UnsafeCell` alternative: simpler and fully safe —
    // collect per-worker (index, result) pairs and merge afterwards.
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    for bucket in buckets {
        for (i, r) in bucket {
            results[i] = Some(r);
        }
    }
    results.into_iter().map(|r| r.expect("every index claimed exactly once")).collect()
}

/// Cartesian product helper for two parameter axes.
pub fn grid2<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map::<u32, u32, _>(&[], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn heavy_closure_with_shared_state() {
        // The closure reads shared data; results must still be correct.
        let table: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| table[i]);
        assert_eq!(out, table);
    }

    #[test]
    fn grid_product() {
        let g = grid2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[5], (2, "c"));
    }
}
