//! Lemma-level verification: the *internal* steps of the paper's proofs,
//! checked on real scheduler executions over randomized workloads.
//!
//! * Theorem 3.5's key step — consecutive Batch+ flag jobs can never
//!   overlap (`a(J_{i+1}) > d(J_i) + p(J_i)`).
//! * Lemma 4.2 — CDB's span is at most `(α+1)` times the span of its flag
//!   jobs.
//! * Lemma 4.5 — Profit's span is at most `k` times the span of its flag
//!   jobs.
//! * Lemma 4.6 — among Profit flags, earlier deadline ⟹ earlier completion.
//! * Batch+ flag structure: every job started in an iteration starts inside
//!   `[d(flag), d(flag) + p(flag))` (the proof's containment argument).

use fjs_core::interval::IntervalSet;
use fjs_core::prelude::*;
use fjs_schedulers::{BatchPlus, ClassifyByDuration, FlagRecorder, Profit, OPTIMAL_K};

/// Deterministic mixed workload used across the lemma checks.
fn workload(seed: u64, n: usize) -> Instance {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let a = (next() % 4000) as f64 / 10.0;
            let lax = (next() % 600) as f64 / 10.0;
            let p = 1.0 + (next() % 150) as f64 / 10.0;
            Job::adp(a, a + lax, p)
        })
        .collect();
    Instance::new(jobs)
}

/// Span of a set of flags under "start at deadline" (their actual starts in
/// Batch+/CDB/Profit schedules).
fn flag_span(inst: &Instance, flags: &[JobId]) -> Dur {
    flags
        .iter()
        .map(|&id| {
            let j = inst.job(id);
            j.active_interval_at(j.deadline())
        })
        .collect::<IntervalSet>()
        .measure()
}

#[test]
fn batch_plus_flags_never_overlappable() {
    for seed in 0..25u64 {
        let inst = workload(seed, 150);
        let mut sched = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        let flags = sched.flag_jobs();
        // Theorem 3.5: the next flag arrives strictly after the previous
        // flag's latest completion, so their intervals can never overlap
        // under ANY scheduler.
        for w in flags.windows(2) {
            let prev = out.instance.job(w[0]);
            let next = out.instance.job(w[1]);
            assert!(
                next.arrival() > prev.latest_completion()
                    || next.arrival() == prev.latest_completion(),
                "seed {seed}: flag {} (a={}) overlaps window of flag {} (d+p={})",
                w[1],
                next.arrival(),
                w[0],
                prev.latest_completion()
            );
            assert!(
                prev.never_overlaps(next),
                "seed {seed}: consecutive flags overlappable"
            );
        }
    }
}

#[test]
fn batch_plus_iteration_containment() {
    // Every job started in iteration i has its active interval inside
    // [d(flag_i), d(flag_i) + (μ+1)·p(flag_i)) — the Theorem 3.5 span
    // argument. We check the sharper per-iteration containment with μ from
    // the instance.
    for seed in 0..25u64 {
        let inst = workload(seed, 120);
        let mu = inst.mu().unwrap();
        let mut sched = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        let flags = sched.flag_jobs();
        // Assign each job to its iteration: the last flag whose deadline is
        // <= the job's start.
        let mut flag_starts: Vec<(Time, JobId)> = flags
            .iter()
            .map(|&f| (out.instance.job(f).deadline(), f))
            .collect();
        flag_starts.sort();
        for (id, job) in out.instance.iter() {
            let s = out.schedule.start(id).unwrap();
            let idx = flag_starts.partition_point(|&(d, _)| d <= s);
            assert!(idx > 0, "job started before the first flag?!");
            let (fd, f) = flag_starts[idx - 1];
            let fp = out.instance.job(f).length();
            let iteration_window =
                fjs_core::interval::Interval::new(fd, fd + fp * (mu + 1.0) + dur(1e-9));
            assert!(
                iteration_window.contains_interval(&job.active_interval_at(s)),
                "seed {seed}: {id} runs {} outside its iteration window {}",
                job.active_interval_at(s),
                iteration_window
            );
        }
    }
}

#[test]
fn lemma_4_2_cdb_span_at_most_alpha_plus_one_times_flag_span() {
    for seed in 0..25u64 {
        let inst = workload(seed, 150);
        let alpha = 1.9;
        let mut sched = ClassifyByDuration::new(alpha, 1.0);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
        assert!(out.is_feasible());
        let fs = flag_span(&out.instance, &sched.flag_jobs());
        assert!(
            out.span.get() <= (alpha + 1.0) * fs.get() + 1e-9,
            "seed {seed}: span {} > (α+1)·flag-span {}",
            out.span,
            (alpha + 1.0) * fs.get()
        );
    }
}

#[test]
fn lemma_4_5_profit_span_at_most_k_times_flag_span() {
    for seed in 0..25u64 {
        let inst = workload(seed, 150);
        for k in [1.3, OPTIMAL_K, 2.5] {
            let mut sched = Profit::new(k);
            let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
            assert!(out.is_feasible());
            let fs = flag_span(&out.instance, &sched.flag_jobs());
            assert!(
                out.span.get() <= k * fs.get() + 1e-9,
                "seed {seed}, k {k}: span {} > k·flag-span {}",
                out.span,
                k * fs.get()
            );
        }
    }
}

#[test]
fn lemma_4_6_profit_flag_completions_ordered_by_deadline() {
    for seed in 0..25u64 {
        let inst = workload(seed, 150);
        let mut sched = Profit::new(OPTIMAL_K);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
        let mut flags = sched.flag_jobs();
        flags.sort_by_key(|&f| out.instance.job(f).deadline());
        for w in flags.windows(2) {
            let a = out.instance.job(w[0]);
            let b = out.instance.job(w[1]);
            assert!(
                a.latest_completion() <= b.latest_completion() + dur(1e-12),
                "seed {seed}: Lemma 4.6 violated between {} and {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn profit_flags_start_at_their_deadlines() {
    // Flags are, by construction, jobs that hit their starting deadlines.
    for seed in 0..10u64 {
        let inst = workload(seed, 100);
        let mut sched = Profit::new(OPTIMAL_K);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
        for f in sched.flag_jobs() {
            assert_eq!(
                out.schedule.start(f),
                Some(out.instance.job(f).deadline()),
                "seed {seed}: flag {f} not started at its deadline"
            );
        }
    }
}

#[test]
fn profit_non_flags_are_profitable_when_started() {
    // Every non-flag job must satisfy one of the two admission rules
    // relative to SOME flag — the defining property of the Profit schedule.
    for seed in 0..10u64 {
        let inst = workload(seed, 100);
        let k = OPTIMAL_K;
        let mut sched = Profit::new(k);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
        let flags = sched.flag_jobs();
        for (id, job) in out.instance.iter() {
            if flags.contains(&id) {
                continue;
            }
            let s = out.schedule.start(id).unwrap();
            let p = job.length();
            let admitted = flags.iter().any(|&f| {
                let fj = out.instance.job(f);
                let f_start = fj.deadline();
                let f_end = fj.latest_completion();
                // Rule 1: started exactly at a flag's deadline with
                // p ≤ k·p(flag).
                let rule1 = s == f_start && p.get() <= k * fj.length().get() + 1e-9;
                // Rule 2: started at its own arrival during the flag's run
                // with p ≤ k·(end − a).
                let rule2 = s == job.arrival()
                    && s >= f_start
                    && s < f_end
                    && p.get() <= k * (f_end - job.arrival()).get() + 1e-9;
                rule1 || rule2
            });
            assert!(
                admitted,
                "seed {seed}: {id} started at {s} without a justifying flag"
            );
        }
    }
}
