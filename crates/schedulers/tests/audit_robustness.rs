//! Robustness properties of the audit layer: audits must return a typed
//! [`AuditError`] — never panic — on arbitrary schedules and arbitrary
//! (possibly out-of-range) flag lists. This is the audit-side analogue of
//! the engine's panic-free degradation contract: auditors are run on
//! untrusted scheduler output, so a corrupt schedule or flag list has to
//! surface as a verdict, not a crash.

use fjs_core::job::{Instance, Job, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::time::t;
use fjs_prng::{check, SmallRng};
use fjs_schedulers::{audit_batch, audit_batch_plus, audit_profit, AuditError};

fn random_instance(rng: &mut SmallRng) -> Instance {
    let n = rng.usize_range(1, 10);
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let a = rng.u64_below(12) as f64 * 0.5;
            let lax = rng.u64_below(8) as f64 * 0.5;
            let p = 0.5 + rng.u64_below(6) as f64 * 0.5;
            Job::adp(a, a + lax, p)
        })
        .collect();
    Instance::new(jobs)
}

/// An arbitrary schedule: possibly wrongly sized, possibly incomplete,
/// starts at arbitrary times with no regard for job windows.
fn random_schedule(rng: &mut SmallRng, n: usize) -> Schedule {
    let m = if rng.bool_with(0.2) {
        rng.usize_range(0, n + 3)
    } else {
        n
    };
    let starts = (0..m).filter_map(|i| {
        if rng.bool_with(0.85) {
            Some((JobId(i as u32), t(rng.u64_below(40) as f64 * 0.5)))
        } else {
            None
        }
    });
    // Collect before from_starts so the rng borrow ends first.
    let starts: Vec<_> = starts.collect();
    Schedule::from_starts(m, starts)
}

/// An arbitrary flag list: duplicates allowed, ids may exceed the instance.
fn random_flags(rng: &mut SmallRng, n: usize) -> Vec<JobId> {
    let k = rng.usize_range(0, 5);
    (0..k)
        .map(|_| JobId(rng.u64_below(n as u64 + 3) as u32))
        .collect()
}

/// Audits return `Result`, never panic, on arbitrary inputs.
#[test]
fn audits_never_panic_on_arbitrary_schedules_and_flags() {
    check::forall(256, |rng| {
        let inst = random_instance(rng);
        let schedule = random_schedule(rng, inst.len());
        let flags = random_flags(rng, inst.len());
        let k = 1.0 + rng.f64_range(0.1, 4.0);
        // The verdicts themselves are unconstrained; the property is that
        // every call returns instead of unwinding.
        let _ = audit_batch(&inst, &schedule, &flags);
        let _ = audit_batch_plus(&inst, &schedule, &flags);
        let _ = audit_profit(&inst, &schedule, &flags, k);
    });
}

/// Out-of-range flags are reported as `UnknownFlag`, not an index panic —
/// even when the schedule itself validates.
#[test]
fn out_of_range_flags_yield_unknown_flag() {
    check::forall(64, |rng| {
        let inst = random_instance(rng);
        // A valid complete schedule: every job starts at its deadline.
        let schedule =
            Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.deadline())));
        let bogus = JobId((inst.len() + rng.u64_below(4) as usize) as u32);
        for res in [
            audit_batch(&inst, &schedule, &[bogus]),
            audit_batch_plus(&inst, &schedule, &[bogus]),
            audit_profit(&inst, &schedule, &[bogus], 1.5),
        ] {
            assert_eq!(res, Err(AuditError::UnknownFlag { flag: bogus }));
        }
    });
}
