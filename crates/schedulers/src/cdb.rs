//! The **Classify-by-Duration Batch+** (CDB) scheduler (Section 4.2,
//! Theorem 4.4).
//!
//! Clairvoyant. Jobs are classified by processing length: with base `b` and
//! class ratio `α`, category `i` holds all jobs with
//! `p(J) ∈ (b·α^(i−1), b·α^i]`, so each category's internal max/min length
//! ratio is at most `α`. An independent [`BatchPlusState`] schedules each
//! category.
//!
//! Theorem 4.4: CDB is `(3α + 4 + 2/(α−1))`-competitive, minimized at
//! `α = 1 + √(2/3) ≈ 1.8165` where the ratio is `7 + 2√6 ≈ 11.899`.

use std::collections::BTreeMap;

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};
use fjs_core::time::Dur;

use crate::batch_plus::BatchPlusState;
use crate::flag_graph::FlagRecorder;

/// The optimal class ratio `α* = 1 + √(2/3)` (Theorem 4.4).
pub fn optimal_alpha() -> f64 {
    1.0 + (2.0f64 / 3.0).sqrt()
}

/// The proved competitive ratio of CDB as a function of `α`.
pub fn cdb_bound(alpha: f64) -> f64 {
    assert!(alpha > 1.0, "CDB requires α > 1");
    3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0)
}

/// The Classify-by-Duration Batch+ scheduler. Requires a clairvoyant run.
#[derive(Clone, Debug)]
pub struct ClassifyByDuration {
    alpha: f64,
    base: f64,
    /// One Batch+ state machine per non-empty category index.
    categories: BTreeMap<i64, BatchPlusState>,
    /// Category of each released job (indexed by job id).
    job_category: Vec<i64>,
}

impl ClassifyByDuration {
    /// Creates a CDB scheduler with class ratio `alpha > 1` and base length
    /// `base > 0` (the paper's `b`; category boundaries sit at `b·α^i`).
    ///
    /// # Panics
    /// Panics if `alpha <= 1` or `base <= 0`.
    pub fn new(alpha: f64, base: f64) -> Self {
        assert!(alpha > 1.0, "CDB requires α > 1, got {alpha}");
        assert!(
            base > 0.0,
            "CDB requires a positive base length, got {base}"
        );
        ClassifyByDuration {
            alpha,
            base,
            categories: BTreeMap::new(),
            job_category: Vec::new(),
        }
    }

    /// CDB with the analytically optimal `α = 1 + √(2/3)` and base 1.
    pub fn optimal() -> Self {
        ClassifyByDuration::new(optimal_alpha(), 1.0)
    }

    /// The class ratio `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The category index of a processing length: the smallest integer `i`
    /// with `p ≤ b·α^i` (so category `i` is `(b·α^(i−1), b·α^i]`); see
    /// [`fjs_core::sim::geometric_class`].
    pub fn category_of(&self, p: Dur) -> i64 {
        fjs_core::sim::geometric_class(p, self.alpha, self.base)
    }

    /// Number of non-empty categories seen so far.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    fn record_category(&mut self, id: JobId, cat: i64) {
        let idx = id.index();
        if self.job_category.len() <= idx {
            self.job_category.resize(idx + 1, i64::MIN);
        }
        self.job_category[idx] = cat;
    }

    fn category_state(&mut self, cat: i64) -> &mut BatchPlusState {
        self.categories.entry(cat).or_default()
    }
}

impl FlagRecorder for ClassifyByDuration {
    fn flag_jobs(&self) -> Vec<JobId> {
        let mut all: Vec<JobId> = self
            .categories
            .values()
            .flat_map(|s| s.flags().iter().copied())
            .collect();
        all.sort();
        all
    }
}

impl OnlineScheduler for ClassifyByDuration {
    fn name(&self) -> String {
        format!("CDB(α={:.4})", self.alpha)
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        let p = job
            .length
            .expect("CDB is a clairvoyant scheduler: run it with Clairvoyance::Clairvoyant");
        let cat = self.category_of(p);
        self.record_category(job.id, cat);
        self.category_state(cat).job_arrived(job.id, ctx);
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        let cat = self.job_category[id.index()];
        self.category_state(cat).job_deadline(id, ctx);
    }

    fn on_completion(&mut self, id: JobId, _length: Dur, _ctx: &mut Ctx<'_>) {
        let cat = self.job_category[id.index()];
        self.category_state(cat).job_completed(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    #[test]
    fn bound_curve_minimum_at_optimal_alpha() {
        let at_opt = cdb_bound(optimal_alpha());
        assert!((at_opt - (7.0 + 2.0 * 6.0_f64.sqrt())).abs() < 1e-9);
        for a in [1.2, 1.5, 1.7, 2.0, 2.5, 3.5] {
            assert!(cdb_bound(a) >= at_opt - 1e-12, "α={a} beats the optimum");
        }
    }

    #[test]
    fn category_boundaries_half_open_above() {
        let cdb = ClassifyByDuration::new(2.0, 1.0);
        // Category i = (2^(i−1), 2^i].
        assert_eq!(cdb.category_of(dur(1.0)), 0);
        assert_eq!(cdb.category_of(dur(1.5)), 1);
        assert_eq!(cdb.category_of(dur(2.0)), 1);
        assert_eq!(cdb.category_of(dur(2.0001)), 2);
        assert_eq!(cdb.category_of(dur(4.0)), 2);
        assert_eq!(cdb.category_of(dur(0.5)), -1);
        assert_eq!(
            cdb.category_of(dur(0.4)),
            0 - 1,
            "0.4 ∈ (0.25, 0.5]? no: (0.25,0.5] is cat -1"
        );
    }

    #[test]
    fn within_category_ratio_bounded_by_alpha() {
        let alpha = 1.9;
        let cdb = ClassifyByDuration::new(alpha, 1.0);
        // Any two lengths in the same category have ratio ≤ α (up to the
        // boundary tolerance).
        let lens = [0.3, 0.5, 0.9, 1.0, 1.3, 1.9, 2.0, 3.6, 3.61, 6.8, 13.0];
        for &a in &lens {
            for &b in &lens {
                if cdb.category_of(dur(a)) == cdb.category_of(dur(b)) {
                    let ratio = if a > b { a / b } else { b / a };
                    assert!(
                        ratio <= alpha * (1.0 + 1e-9),
                        "lengths {a} and {b} share a category but ratio {ratio} > α"
                    );
                }
            }
        }
    }

    #[test]
    fn categories_schedule_independently() {
        // Short job category and long job category each get their own
        // Batch+ iterations.
        let inst = Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),   // short, flags cat A at t=2
            Job::adp(0.0, 8.0, 100.0), // long, flags cat B at t=8
            Job::adp(1.0, 50.0, 0.9),  // short, pending with J0 → starts at 2
        ]);
        let mut sched = ClassifyByDuration::new(2.0, 1.0);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
        assert_eq!(
            out.schedule.start(JobId(2)),
            Some(t(2.0)),
            "same category as J0"
        );
        assert_eq!(
            out.schedule.start(JobId(1)),
            Some(t(8.0)),
            "own category, own flag"
        );
        assert_eq!(sched.num_categories(), 2);
        assert_eq!(sched.flag_jobs(), vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn mid_iteration_arrival_starts_only_in_same_category() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 10.0), // long flag, runs [0,10)
            Job::adp(1.0, 40.0, 9.0), // same category → starts at arrival
            Job::adp(1.0, 40.0, 1.0), // different category → buffered
        ]);
        let mut sched = ClassifyByDuration::new(2.0, 1.0);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(1)), Some(t(1.0)));
        assert_eq!(
            out.schedule.start(JobId(2)),
            Some(t(40.0)),
            "short category buffers"
        );
    }

    #[test]
    #[should_panic(expected = "clairvoyant")]
    fn non_clairvoyant_run_panics() {
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 1.0)]);
        let _ = run_static(
            &inst,
            Clairvoyance::NonClairvoyant,
            ClassifyByDuration::optimal(),
        );
    }

    #[test]
    #[should_panic(expected = "α > 1")]
    fn alpha_must_exceed_one() {
        let _ = ClassifyByDuration::new(1.0, 1.0);
    }
}
