//! Schedule **audits**: independent, post-hoc verification that a finished
//! run obeys a scheduler's defining rules from the paper. An audit takes
//! only the materialized instance, the schedule and the designated flag
//! jobs — not the scheduler's internal state — so it can certify runs
//! produced by any implementation (or catch a broken one).
//!
//! Audits check the *start-time characterization* of each algorithm:
//!
//! * [`audit_batch`] — every start happens at some flag's deadline, flags
//!   start at their own deadlines, and no arrived job is left pending
//!   across a flag instant (Batch starts *all* pending jobs).
//! * [`audit_batch_plus`] — every job starts either at a flag's deadline
//!   or immediately at its own arrival inside a flag's active interval;
//!   consecutive flags are never-overlappable (the Theorem 3.5 invariant).
//! * [`audit_profit`] — every non-flag start is justified by one of the
//!   two profitability rules for some flag (Section 4.3).

use fjs_core::job::{Instance, JobId};
use fjs_core::schedule::Schedule;
use std::fmt;

/// Why an audit rejected a schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditError {
    /// A designated flag is not a job of the instance at all.
    UnknownFlag {
        /// The unknown id.
        flag: JobId,
    },
    /// A designated flag job does not start at its own deadline.
    FlagNotAtDeadline {
        /// The flag.
        flag: JobId,
    },
    /// A job's start is not explained by any of the algorithm's rules.
    UnjustifiedStart {
        /// The job.
        id: JobId,
        /// Human-readable explanation of what was expected.
        detail: String,
    },
    /// Batch left a pending job unstarted across a flag instant.
    PendingSkipped {
        /// The job that should have started.
        id: JobId,
        /// The flag whose instant it skipped.
        flag: JobId,
    },
    /// Two consecutive Batch+ flags could overlap under some scheduler
    /// (violates the Theorem 3.5 structure).
    OverlappableFlags {
        /// Earlier flag.
        first: JobId,
        /// Later flag.
        second: JobId,
    },
    /// The schedule is not even feasible for the instance.
    Infeasible(fjs_core::schedule::ScheduleError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::UnknownFlag { flag } => {
                write!(f, "flag {flag} is not a job of the instance")
            }
            AuditError::FlagNotAtDeadline { flag } => {
                write!(f, "flag {flag} does not start at its deadline")
            }
            AuditError::UnjustifiedStart { id, detail } => {
                write!(f, "start of {id} unjustified: {detail}")
            }
            AuditError::PendingSkipped { id, flag } => {
                write!(
                    f,
                    "{id} was pending at flag {flag}'s instant but not started"
                )
            }
            AuditError::OverlappableFlags { first, second } => {
                write!(f, "flags {first} and {second} could overlap")
            }
            AuditError::Infeasible(e) => write!(f, "infeasible schedule: {e}"),
        }
    }
}

impl std::error::Error for AuditError {}

fn check_basics(inst: &Instance, schedule: &Schedule, flags: &[JobId]) -> Result<(), AuditError> {
    schedule.validate(inst).map_err(AuditError::Infeasible)?;
    for &flag in flags {
        // Reject ids outside the instance before any indexed access, so
        // audits degrade to a typed error on corrupt flag lists instead of
        // panicking.
        if flag.index() >= inst.len() {
            return Err(AuditError::UnknownFlag { flag });
        }
        if schedule.start(flag) != Some(inst.job(flag).deadline()) {
            return Err(AuditError::FlagNotAtDeadline { flag });
        }
    }
    Ok(())
}

/// Audits a schedule against the **Batch** rules.
pub fn audit_batch(
    inst: &Instance,
    schedule: &Schedule,
    flags: &[JobId],
) -> Result<(), AuditError> {
    check_basics(inst, schedule, flags)?;
    let flag_times: Vec<_> = flags.iter().map(|&fl| inst.job(fl).deadline()).collect();
    for (id, job) in inst.iter() {
        let s = schedule.start(id).expect("validated complete");
        // Rule: every start coincides with some flag instant.
        if !flag_times.contains(&s) {
            return Err(AuditError::UnjustifiedStart {
                id,
                detail: format!("start {s} is not a flag instant"),
            });
        }
        // Rule: a job never stays pending across a flag instant.
        for (&fl, &ft) in flags.iter().zip(&flag_times) {
            if job.arrival() <= ft && s > ft {
                return Err(AuditError::PendingSkipped { id, flag: fl });
            }
        }
    }
    Ok(())
}

/// Audits a schedule against the **Batch+** rules.
pub fn audit_batch_plus(
    inst: &Instance,
    schedule: &Schedule,
    flags: &[JobId],
) -> Result<(), AuditError> {
    check_basics(inst, schedule, flags)?;
    // Consecutive flags never-overlappable (Theorem 3.5).
    for w in flags.windows(2) {
        let a = inst.job(w[0]);
        let b = inst.job(w[1]);
        if !a.never_overlaps(b) {
            return Err(AuditError::OverlappableFlags {
                first: w[0],
                second: w[1],
            });
        }
    }
    for (id, job) in inst.iter() {
        if flags.contains(&id) {
            continue;
        }
        let s = schedule.start(id).expect("validated complete");
        let justified = flags.iter().any(|&fl| {
            let fj = inst.job(fl);
            let f_start = fj.deadline();
            let f_end = fj.latest_completion();
            // Started with the batch at the flag instant…
            let rule_batch = s == f_start && job.arrival() <= f_start;
            // …or immediately at arrival during the flag's run.
            let rule_immediate = s == job.arrival() && s >= f_start && s < f_end;
            rule_batch || rule_immediate
        });
        if !justified {
            return Err(AuditError::UnjustifiedStart {
                id,
                detail: format!(
                    "start {s} is neither a flag instant for an already-arrived job \
                     nor an immediate start inside a flag's active interval"
                ),
            });
        }
    }
    Ok(())
}

/// Audits a schedule against the **Profit** rules with parameter `k`.
pub fn audit_profit(
    inst: &Instance,
    schedule: &Schedule,
    flags: &[JobId],
    k: f64,
) -> Result<(), AuditError> {
    assert!(k > 1.0, "Profit requires k > 1");
    check_basics(inst, schedule, flags)?;
    for (id, job) in inst.iter() {
        if flags.contains(&id) {
            continue;
        }
        let s = schedule.start(id).expect("validated complete");
        let p = job.length();
        let justified = flags.iter().any(|&fl| {
            let fj = inst.job(fl);
            let f_start = fj.deadline();
            let f_end = fj.latest_completion();
            // Rule 1: pending at the flag instant with p ≤ k·p(flag).
            let rule1 =
                s == f_start && job.arrival() <= f_start && p.get() <= k * fj.length().get() + 1e-9;
            // Rule 2: immediate start at arrival inside the flag's run with
            // p ≤ k·(end − a).
            let rule2 = s == job.arrival()
                && s >= f_start
                && s < f_end
                && p.get() <= k * (f_end - job.arrival()).get() + 1e-9;
            rule1 || rule2
        });
        if !justified {
            return Err(AuditError::UnjustifiedStart {
                id,
                detail: "no flag renders this start profitable".into(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flag_graph::FlagRecorder;
    use crate::{Batch, BatchPlus, Profit, OPTIMAL_K};
    use fjs_core::prelude::*;

    fn workload(seed: u64, n: usize) -> Instance {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let jobs: Vec<Job> = (0..n)
            .map(|_| {
                let a = (next() % 200) as f64 / 10.0;
                let lax = (next() % 150) as f64 / 10.0;
                let p = 1.0 + (next() % 80) as f64 / 10.0;
                Job::adp(a, a + lax, p)
            })
            .collect();
        Instance::new(jobs)
    }

    #[test]
    fn real_batch_runs_pass_the_audit() {
        for seed in 0..15u64 {
            let inst = workload(seed, 60);
            let mut sched = Batch::new();
            let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
            audit_batch(&out.instance, &out.schedule, &sched.flag_jobs())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn real_batch_plus_runs_pass_the_audit() {
        for seed in 0..15u64 {
            let inst = workload(seed, 60);
            let mut sched = BatchPlus::new();
            let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
            audit_batch_plus(&out.instance, &out.schedule, &sched.flag_jobs())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn real_profit_runs_pass_the_audit() {
        for seed in 0..15u64 {
            let inst = workload(seed, 60);
            for k in [1.3, OPTIMAL_K, 2.5] {
                let mut sched = Profit::new(k);
                let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut sched);
                audit_profit(&out.instance, &out.schedule, &sched.flag_jobs(), k)
                    .unwrap_or_else(|e| panic!("seed {seed}, k {k}: {e}"));
            }
        }
    }

    #[test]
    fn audits_reject_foreign_schedules() {
        // An Eager schedule should fail the Batch audit (starts at
        // arrivals, not flag instants) on any instance with laxity.
        let inst = Instance::new(vec![Job::adp(0.0, 5.0, 1.0), Job::adp(1.0, 7.0, 2.0)]);
        let eager = Schedule::from_starts(2, inst.iter().map(|(id, j)| (id, j.arrival())));
        // Pretend the first job was a flag.
        let err = audit_batch(&inst, &eager, &[JobId(0)]).unwrap_err();
        assert!(matches!(err, AuditError::FlagNotAtDeadline { .. }));

        // A lazy schedule fails the Profit audit: non-flag starts are not
        // justified by any flag.
        let lazy = Schedule::from_starts(2, inst.iter().map(|(id, j)| (id, j.deadline())));
        let err = audit_profit(&inst, &lazy, &[JobId(0)], 1.1).unwrap_err();
        assert!(matches!(err, AuditError::UnjustifiedStart { .. }), "{err}");
    }

    #[test]
    fn audit_detects_overlappable_flags() {
        // Hand-build a "Batch+ run" whose flags could overlap.
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 10.0), // flag 1: latest completion 11
            Job::adp(5.0, 6.0, 1.0),  // "flag 2" arrives inside flag 1's window
        ]);
        let sched = Schedule::from_starts(2, [(JobId(0), t(1.0)), (JobId(1), t(6.0))]);
        let err = audit_batch_plus(&inst, &sched, &[JobId(0), JobId(1)]).unwrap_err();
        assert!(matches!(err, AuditError::OverlappableFlags { .. }));
    }

    #[test]
    fn audit_rejects_infeasible_schedules() {
        let inst = Instance::new(vec![Job::adp(0.0, 1.0, 1.0)]);
        let bad = Schedule::from_starts(1, [(JobId(0), t(2.0))]); // after deadline
        let err = audit_batch(&inst, &bad, &[]).unwrap_err();
        assert!(matches!(err, AuditError::Infeasible(_)));
    }

    #[test]
    fn error_messages_name_the_job() {
        let e = AuditError::PendingSkipped {
            id: JobId(3),
            flag: JobId(1),
        };
        assert!(e.to_string().contains("J3"));
        assert!(e.to_string().contains("J1"));
    }
}
