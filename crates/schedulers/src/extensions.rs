//! Extension schedulers beyond the paper, used for ablations (E11/E13):
//!
//! * [`RandomStart`] — starts each job at an independent uniformly random
//!   point of its window. A feasibility-preserving randomized baseline: it
//!   quantifies how much of Batch+/Profit's advantage is *coordination*
//!   rather than mere delay. (Seeded splitmix64; fully deterministic per
//!   seed, so experiments stay reproducible.)
//! * [`Threshold`] — starts all pending jobs whenever the pending count
//!   reaches `m` (and, for feasibility, whenever a pending job hits its
//!   starting deadline). The natural "batch by count, not by deadline"
//!   alternative; the paper's deadline-triggered batching wins because a
//!   count trigger has no relation to OPT's structure.

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};

use crate::flag_graph::FlagRecorder;

/// Splitmix64 step.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Starts each job at a uniformly random feasible time (seeded).
#[derive(Clone, Copy, Debug)]
pub struct RandomStart {
    seed: u64,
}

impl RandomStart {
    /// Creates the randomized baseline with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomStart { seed }
    }

    fn unit(&self, id: JobId) -> f64 {
        (mix(self.seed ^ u64::from(id.0).wrapping_mul(0xA24B_AED4_963E_E407)) >> 11) as f64
            / (1u64 << 53) as f64
    }
}

impl OnlineScheduler for RandomStart {
    fn name(&self) -> String {
        format!("RandomStart(seed={})", self.seed)
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        let lax = job.deadline - job.arrival;
        let start = job.arrival + lax * self.unit(job.id);
        if start <= job.arrival {
            ctx.start(job.id);
        } else {
            ctx.start_at(job.id, start.min(job.deadline));
        }
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        // Only reachable if rounding pushed the committed start past the
        // alarm; the engine pre-empts via the ordered start, so just guard.
        if ctx.is_pending(id) {
            ctx.start(id);
        }
    }
}

/// Starts all pending jobs when `m` accumulate (or a deadline forces it).
#[derive(Clone, Debug)]
pub struct Threshold {
    m: usize,
    flags: Vec<JobId>,
}

impl Threshold {
    /// Creates a count-triggered batcher; `m >= 1`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "threshold must be at least 1");
        Threshold {
            m,
            flags: Vec::new(),
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        ctx.start_all_pending();
    }
}

impl FlagRecorder for Threshold {
    fn flag_jobs(&self) -> Vec<JobId> {
        self.flags.clone()
    }
}

impl OnlineScheduler for Threshold {
    fn name(&self) -> String {
        format!("Threshold(m={})", self.m)
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        // The arrived job is already in the pending view.
        if ctx.num_pending() >= self.m {
            self.flags.push(job.id);
            self.flush(ctx);
        }
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        self.flags.push(id);
        self.flush(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    fn inst() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 10.0, 1.0),
            Job::adp(1.0, 10.0, 1.0),
            Job::adp(2.0, 10.0, 1.0),
            Job::adp(20.0, 21.0, 1.0),
        ])
    }

    #[test]
    fn random_start_is_feasible_and_seed_deterministic() {
        let a = run_static(&inst(), Clairvoyance::NonClairvoyant, RandomStart::new(7));
        let b = run_static(&inst(), Clairvoyance::NonClairvoyant, RandomStart::new(7));
        assert!(a.is_feasible());
        assert_eq!(a.schedule, b.schedule, "same seed, same schedule");
        let c = run_static(&inst(), Clairvoyance::NonClairvoyant, RandomStart::new(8));
        assert!(c.is_feasible());
        // Different seeds almost surely differ on a 4-job instance.
        assert_ne!(a.schedule, c.schedule);
    }

    #[test]
    fn random_start_respects_windows() {
        for seed in 0..20 {
            let out = run_static(
                &inst(),
                Clairvoyance::NonClairvoyant,
                RandomStart::new(seed),
            );
            assert!(out.is_feasible());
            assert!(out.schedule.validate(&out.instance).is_ok());
        }
    }

    #[test]
    fn threshold_batches_by_count() {
        let mut sched = Threshold::new(3);
        let out = run_static(&inst(), Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        // The third arrival (t=2) trips the threshold: first three start
        // together at t=2.
        for i in 0..3 {
            assert_eq!(out.schedule.start(JobId(i)), Some(t(2.0)));
        }
        // The fourth waits for its own deadline (count never reaches 3).
        assert_eq!(out.schedule.start(JobId(3)), Some(t(21.0)));
        assert_eq!(sched.flag_jobs().len(), 2);
    }

    #[test]
    fn threshold_one_is_eager() {
        let out = run_static(&inst(), Clairvoyance::NonClairvoyant, Threshold::new(1));
        assert!(out.is_feasible());
        for (id, job) in out.instance.iter() {
            assert_eq!(out.schedule.start(id), Some(job.arrival()));
        }
    }

    #[test]
    fn threshold_deadline_fallback_prevents_violations() {
        // Threshold larger than the job count: only deadlines trigger.
        let out = run_static(&inst(), Clairvoyance::NonClairvoyant, Threshold::new(100));
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(10.0)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        let _ = Threshold::new(0);
    }
}
