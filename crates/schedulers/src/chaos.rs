//! Fault-injection verdict matrix: every registered scheduler against every
//! environment and scheduler fault mode.
//!
//! Each cell runs one scheduler under one fault inside
//! `std::panic::catch_unwind` and classifies the result:
//!
//! * **pass** — the run terminated [`Termination::Completed`], the reported
//!   schedule validates against the materialized instance, and every job was
//!   started;
//! * **unsound** — the run finished but broke one of those guarantees
//!   (typed environment-fault termination, event-cap runaway, an invalid or
//!   incomplete schedule);
//! * **panic** — the engine or scheduler panicked. The engine's contract is
//!   that faults surface as typed degradation, so any panic is a bug.
//!
//! Environment-fault cells wrap the base instance in a
//! [`FaultyEnvironment`], which injects contract-*legal* pathological job
//! streams (zero-laxity bursts, equal-timestamp storms, extreme `μ`,
//! deferred rulings, dense releases, precision loss). Scheduler-fault cells
//! wrap the scheduler in a [`ChaosScheduler`], which perturbs its actions
//! into contract-*illegal* ones; the engine must absorb those as
//! [`RejectedAction`](fjs_core::sim::RejectedAction)s and still complete
//! every job. Schedulers run at their weakest supported information model,
//! exactly as in experiments.

use fjs_core::faults::{ChaosScheduler, EnvFaultMode, FaultyEnvironment, SchedFaultMode};
use fjs_core::job::{Instance, Job};
use fjs_core::sim::{run_with_config, SimConfig, SimOutcome, StaticEnv, Termination};

use crate::registry::SchedulerKind;

/// Default event budget per cell. Generous for these tiny instances —
/// hundreds of events are typical — so hitting it means a runaway feedback
/// loop, which the harness reports as unsound rather than looping for
/// minutes. Override with [`run_chaos_matrix_with`] (`--watchdog-events`).
pub const CHAOS_MAX_EVENTS: usize = 1_000_000;

/// How one (scheduler, fault) cell ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Clean completion with a valid, complete schedule.
    Pass,
    /// The run finished but broke an engine guarantee; the message says
    /// which one.
    Unsound(String),
    /// The run panicked; the message is the panic payload when printable.
    Panicked(String),
}

impl Verdict {
    /// `true` only for [`Verdict::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// Short cell label for tables: `pass`, `UNSOUND`, `PANIC`.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Unsound(_) => "UNSOUND",
            Verdict::Panicked(_) => "PANIC",
        }
    }
}

/// One cell of the chaos matrix.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// Scheduler label (registry display name).
    pub scheduler: String,
    /// Fault label (`env:` or `sched:` prefixed kebab-case mode name).
    pub fault: String,
    /// Outcome classification.
    pub verdict: Verdict,
}

/// The full verdict matrix plus summary accessors.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// All cells, grouped by scheduler in registry order.
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// Cells that did not pass.
    pub fn failures(&self) -> Vec<&ChaosCell> {
        self.cells.iter().filter(|c| !c.verdict.is_pass()).collect()
    }

    /// `true` when every cell passed.
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|c| c.verdict.is_pass())
    }

    /// The distinct fault labels in matrix column order.
    pub fn fault_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for c in &self.cells {
            if !labels.contains(&c.fault) {
                labels.push(c.fault.clone());
            }
        }
        labels
    }

    /// The distinct scheduler labels in matrix row order.
    pub fn scheduler_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for c in &self.cells {
            if !labels.contains(&c.scheduler) {
                labels.push(c.scheduler.clone());
            }
        }
        labels
    }
}

/// Base instance every cell starts from: a small mixed-laxity workload with
/// simultaneous arrivals, a rigid job and a wide-window straggler, so the
/// injected faults land on non-trivial scheduler state.
pub fn chaos_base_instance() -> Instance {
    Instance::new(vec![
        Job::adp(0.0, 2.0, 1.0),
        Job::adp(0.0, 0.0, 2.0),
        Job::adp(0.5, 4.0, 0.5),
        Job::adp(1.0, 1.0, 1.0),
        Job::adp(1.0, 9.0, 3.0),
        Job::adp(2.5, 6.0, 1.5),
    ])
}

fn classify(outcome: &SimOutcome) -> Verdict {
    match &outcome.termination {
        Termination::Completed => {}
        Termination::EventCapExhausted { events } => {
            return Verdict::Unsound(format!("runaway: event cap hit after {events} events"));
        }
        Termination::EnvironmentFault(fault) => {
            return Verdict::Unsound(format!(
                "engine flagged a legal job stream as faulty: {fault}"
            ));
        }
    }
    if !outcome.unresolved.is_empty() {
        return Verdict::Unsound(format!(
            "{} job lengths left unruled",
            outcome.unresolved.len()
        ));
    }
    if !outcome.schedule.is_complete() {
        return Verdict::Unsound("schedule is missing job starts".into());
    }
    if let Err(e) = outcome.schedule.validate(&outcome.instance) {
        return Verdict::Unsound(format!("invalid schedule: {e}"));
    }
    Verdict::Pass
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn run_cell(f: impl FnOnce() -> SimOutcome + std::panic::UnwindSafe) -> Verdict {
    match std::panic::catch_unwind(f) {
        Ok(outcome) => classify(&outcome),
        Err(payload) => Verdict::Panicked(panic_message(payload)),
    }
}

/// Runs the full fault matrix for one scheduler kind: all
/// [`EnvFaultMode`]s, then all [`SchedFaultMode`]s, at the default
/// [`CHAOS_MAX_EVENTS`] watchdog budget.
pub fn run_chaos_for(kind: SchedulerKind) -> Vec<ChaosCell> {
    run_chaos_for_with(kind, CHAOS_MAX_EVENTS)
}

/// [`run_chaos_for`] with an explicit watchdog event budget per cell.
pub fn run_chaos_for_with(kind: SchedulerKind, max_events: usize) -> Vec<ChaosCell> {
    let base = chaos_base_instance();
    let model = kind.information_model();
    let config = SimConfig {
        max_events,
        ..SimConfig::default()
    };
    let scheduler = kind.label();
    let mut cells = Vec::with_capacity(EnvFaultMode::ALL.len() + SchedFaultMode::ALL.len());

    for mode in EnvFaultMode::ALL {
        let verdict = run_cell(|| {
            let env = FaultyEnvironment::new(StaticEnv::new(&base, model), mode);
            run_with_config(env, kind.build(), config)
        });
        cells.push(ChaosCell {
            scheduler: scheduler.clone(),
            fault: format!("env:{}", mode.label()),
            verdict,
        });
    }

    for mode in SchedFaultMode::ALL {
        let verdict = run_cell(|| {
            let env = StaticEnv::new(&base, model);
            run_with_config(env, ChaosScheduler::new(kind.build(), mode), config)
        });
        cells.push(ChaosCell {
            scheduler: scheduler.clone(),
            fault: format!("sched:{}", mode.label()),
            verdict,
        });
    }

    cells
}

/// Runs the matrix for the given kinds (typically
/// [`SchedulerKind::registered_set`]) at the default watchdog budget.
pub fn run_chaos_matrix(kinds: &[SchedulerKind]) -> ChaosReport {
    run_chaos_matrix_with(kinds, CHAOS_MAX_EVENTS)
}

/// [`run_chaos_matrix`] with an explicit watchdog event budget per cell.
pub fn run_chaos_matrix_with(kinds: &[SchedulerKind], max_events: usize) -> ChaosReport {
    let mut report = ChaosReport::default();
    for &kind in kinds {
        report.cells.extend(run_chaos_for_with(kind, max_events));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_instance_is_nontrivial() {
        let inst = chaos_base_instance();
        assert!(inst.len() >= 6);
        // Mixed laxity: at least one rigid and one flexible job.
        assert!(inst.jobs().iter().any(|j| j.laxity().get() == 0.0));
        assert!(inst.jobs().iter().any(|j| j.laxity().get() > 1.0));
    }

    #[test]
    fn full_matrix_is_clean() {
        let report = run_chaos_matrix(&SchedulerKind::registered_set());
        let expected = SchedulerKind::registered_set().len()
            * (EnvFaultMode::ALL.len() + SchedFaultMode::ALL.len());
        assert_eq!(report.cells.len(), expected);
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|c| format!("{} × {} → {:?}", c.scheduler, c.fault, c.verdict))
            .collect();
        assert!(
            report.is_clean(),
            "chaos failures:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn report_axes_cover_the_matrix() {
        let report = run_chaos_matrix(&[SchedulerKind::Eager, SchedulerKind::Lazy]);
        assert_eq!(report.scheduler_labels().len(), 2);
        assert_eq!(
            report.fault_labels().len(),
            EnvFaultMode::ALL.len() + SchedFaultMode::ALL.len()
        );
    }

    #[test]
    fn a_panicking_scheduler_is_reported_not_propagated() {
        struct Exploder;
        impl fjs_core::sim::OnlineScheduler for Exploder {
            fn name(&self) -> String {
                "exploder".into()
            }
            fn on_arrival(
                &mut self,
                _job: fjs_core::sim::Arrival,
                _ctx: &mut fjs_core::sim::Ctx<'_>,
            ) {
                panic!("scheduler exploded");
            }
            fn on_deadline(
                &mut self,
                _id: fjs_core::job::JobId,
                _ctx: &mut fjs_core::sim::Ctx<'_>,
            ) {
            }
        }
        let base = chaos_base_instance();
        let verdict = run_cell(|| {
            let env = StaticEnv::new(&base, fjs_core::sim::Clairvoyance::NonClairvoyant);
            run_with_config(
                env,
                Exploder,
                SimConfig {
                    max_events: CHAOS_MAX_EVENTS,
                    ..SimConfig::default()
                },
            )
        });
        match verdict {
            Verdict::Panicked(msg) => assert!(msg.contains("exploded")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
}
