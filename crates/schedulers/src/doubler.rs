//! The **Doubler** baseline (Koehler & Khuller, WADS 2017).
//!
//! The paper's concluding remarks cite a concurrent work that studied the
//! unbounded-capacity online case (equivalent to Clairvoyant FJS) and
//! proposed a 5-competitive *Doubler* scheduler. Ren & Tang give no
//! pseudocode, so this module implements the classic rent-or-buy doubling
//! reconstruction: **delay each job for at most (a constant multiple of) its
//! own processing length**, i.e. start `J` at
//! `min(d(J), a(J) + c·p(J))`.
//!
//! The intuition matches the cited description: a job gambles waiting time
//! against the span it would have to pay anyway. Short jobs therefore
//! synchronize behind long ones, while long jobs never wait much longer than
//! their own cost. This scheduler is used purely as a clairvoyant baseline
//! comparator in experiments E4/E8/E11 (see DESIGN.md §7, substitutions).

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};

/// The Doubler baseline. Intended for clairvoyant runs (the delay budget
/// is `c·p(J)`); when lengths are masked it degrades to deadline starts
/// (see [`OnlineScheduler::on_arrival`]) rather than panicking.
#[derive(Clone, Copy, Debug)]
pub struct Doubler {
    c: f64,
}

impl Default for Doubler {
    fn default() -> Self {
        Doubler::new(1.0)
    }
}

impl Doubler {
    /// Creates a Doubler with waiting budget `c·p(J)` per job, `c > 0`.
    ///
    /// # Panics
    /// Panics if `c <= 0`.
    pub fn new(c: f64) -> Self {
        assert!(
            c > 0.0,
            "Doubler requires a positive budget factor, got {c}"
        );
        Doubler { c }
    }

    /// The budget factor `c`.
    pub fn c(&self) -> f64 {
        self.c
    }
}

impl OnlineScheduler for Doubler {
    fn name(&self) -> String {
        format!("Doubler(c={:.2})", self.c)
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        // The delay budget is c·p(J), so Doubler wants a clairvoyant run.
        // When the length is masked (non-clairvoyant or class-only runs —
        // e.g. under the chaos harness), degrade gracefully instead of
        // panicking: with no budget to gamble, wait the full laxity and
        // start at the deadline, Batch-style.
        let start = match job.length {
            Some(p) => (job.arrival + p * self.c).min(job.deadline),
            None => job.deadline,
        };
        if start <= job.arrival {
            ctx.start(job.id);
        } else {
            ctx.start_at(job.id, start);
        }
    }

    fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
        // Every job carries a start_at commitment no later than its
        // deadline, so the alarm never finds an uncommitted pending job.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    #[test]
    fn waits_its_own_length_then_starts() {
        let inst = Instance::new(vec![Job::adp(0.0, 100.0, 3.0)]);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, Doubler::default());
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(3.0)));
    }

    #[test]
    fn deadline_caps_the_wait() {
        let inst = Instance::new(vec![Job::adp(0.0, 2.0, 10.0)]);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, Doubler::default());
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
    }

    #[test]
    fn short_jobs_synchronize_behind_long_ones() {
        // A long job starts at 10; short laxity-rich jobs arriving later
        // land inside its active interval thanks to their waits.
        let inst = Instance::new(vec![
            Job::adp(0.0, 50.0, 10.0), // starts at 10, runs [10, 20)
            Job::adp(9.0, 50.0, 2.0),  // starts at 11, runs [11, 13)
            Job::adp(12.0, 50.0, 1.0), // starts at 13, runs [13, 14)
        ]);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, Doubler::default());
        assert!(out.is_feasible());
        assert_eq!(out.span, dur(10.0), "all work hides under the long job");
    }

    #[test]
    fn rigid_jobs_start_at_arrival() {
        let inst = Instance::new(vec![Job::adp(5.0, 5.0, 1.0)]);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, Doubler::new(2.0));
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(5.0)));
    }

    #[test]
    #[should_panic(expected = "positive budget")]
    fn non_positive_budget_rejected() {
        let _ = Doubler::new(0.0);
    }

    #[test]
    fn non_clairvoyant_run_degrades_to_deadline_starts() {
        // Regression: this used to panic on the masked length. With p(J)
        // hidden there is no budget, so every job waits its full laxity.
        let inst = Instance::new(vec![
            Job::adp(0.0, 7.0, 3.0),
            Job::adp(1.0, 1.0, 2.0), // rigid: starts at arrival
            Job::adp(2.0, 9.0, 1.0),
        ]);
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, Doubler::default());
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(7.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(1.0)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(9.0)));
        assert_eq!(out.stats.force_starts, 0, "no violations under degradation");
    }
}
