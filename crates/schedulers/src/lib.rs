//! # fjs-schedulers
//!
//! Every scheduler from Ren & Tang, *Online Flexible Job Scheduling for
//! Minimum Span* (SPAA 2017), plus the baselines the paper compares against
//! in prose:
//!
//! | Scheduler | Setting | Competitive ratio | Paper |
//! |-----------|---------|-------------------|-------|
//! | [`Eager`] | both | unbounded | §3.2 prose |
//! | [`Lazy`] | both | unbounded | §3.2 prose |
//! | [`Batch`] | non-clairvoyant | `[2μ, 2μ+1]` | Thm 3.4 |
//! | [`BatchPlus`] | non-clairvoyant | `μ+1` (tight) | Thm 3.5 |
//! | [`ClassifyByDuration`] | clairvoyant | `3α+4+2/(α−1)`, best `7+2√6` | Thm 4.4 |
//! | [`Profit`] | clairvoyant | `2k+2+1/(k−1)`, best `4+2√2` | Thm 4.11 |
//! | [`Doubler`] | clairvoyant | baseline (Koehler–Khuller reconstruction) | §5 |
//!
//! The [`uniform`] module adds the **uniform-jobs family** from the
//! successor paper (Liu, Khuller & Tang, *Online Span Minimization for
//! Flexible Uniform Jobs*) — the `μ = 1` regime where every bound above
//! degenerates. Its guarantees hold on equal-length instances only
//! (`λ` is the normalized laxity `max laxity / p`):
//!
//! | Scheduler | Setting | Ratio on uniform instances |
//! |-----------|---------|----------------------------|
//! | [`UnitAligned`] | collapsed (length-blind) | `2` (tight) |
//! | [`UnitGreedy`] | collapsed (length-blind) | `1+λ` (tight) |
//! | [`UnitEndfit`] | collapsed (length-blind) | `1+λ` (lower side `λ`) |
//!
//! The [`flag_graph`] module implements the flag-job graph `G(F,E)` used by
//! the Profit analysis (Lemmas 4.6–4.10), and [`registry`] exposes a uniform
//! way to enumerate and run all schedulers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod baseline;
pub mod batch;
pub mod batch_plus;
pub mod cdb;
pub mod chaos;
pub mod doubler;
pub mod extensions;
pub mod flag_graph;
pub mod profit;
pub mod registry;
pub mod semi_cdb;
pub mod uniform;

pub use audit::{audit_batch, audit_batch_plus, audit_profit, AuditError};
pub use baseline::{Eager, Lazy};
pub use batch::Batch;
pub use batch_plus::{BatchPlus, BatchPlusState};
pub use cdb::{cdb_bound, optimal_alpha, ClassifyByDuration};
pub use doubler::Doubler;
pub use extensions::{RandomStart, Threshold};
pub use flag_graph::{flag_infos, FlagGraph, FlagInfo, FlagRecorder, TreeStats};
pub use profit::{profit_bound, Profit, OPTIMAL_K};
pub use registry::SchedulerKind;
pub use semi_cdb::SemiCdb;
pub use uniform::{UnitAligned, UnitEndfit, UnitGreedy};
