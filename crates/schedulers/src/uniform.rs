//! The **uniform-jobs scheduler family** — the successor paper's regime
//! ("Online Span Minimization for Flexible Uniform Jobs", Liu, Khuller &
//! Tang): every job has the same processing length `p`, i.e. `μ = 1`,
//! exactly where the seed paper's length-ratio bounds degenerate.
//!
//! At unit length the two information models **collapse**: a length-blind
//! scheduler cannot distinguish clairvoyant from non-clairvoyant runs
//! because there is nothing to learn — all three schedulers here never read
//! `p(J)`, and the registry encodes the collapse as an invariant
//! ([`crate::SchedulerKind::clairvoyance_collapses`], pinned by a
//! bit-identity test across both models).
//!
//! The family and its guarantees (all on uniform instances; `λ` is the
//! normalized laxity `max_J laxity(J) / p`,
//! [`fjs_core::job::Instance::uniform_laxity_ratio`]):
//!
//! | Scheduler | Rule | Ratio on uniform instances |
//! |---|---|---|
//! | [`UnitAligned`] | aligned batching (flag at earliest pending deadline, open door while the flag runs) | `2` (tight) |
//! | [`UnitGreedy`] | start at arrival | `1 + λ` (tight) |
//! | [`UnitEndfit`] | start at the end of the window | `1 + λ` (lower side `λ`) |
//!
//! **Why `1 + λ` holds** (dilation argument): fix an optimal schedule and
//! one of its maximal busy components `C = [l, r)`. Every job OPT starts
//! inside `C` has `s_J ∈ [l, r − p]` with `s_J ∈ [a_J, a_J + λp]`, so its
//! arrival lies in `[l − λp, r − p]` and its deadline in `[l, r − p + λp]`.
//! Hence UnitGreedy's interval `[a_J, a_J + p)` lies in `[l − λp, r)` and
//! UnitEndfit's `[d_J, d_J + p)` lies in `[l, r + λp)`: each component's
//! cost inflates by at most `λp ≤ λ·|C|` (components have `|C| ≥ p`), and
//! summing over components gives span ≤ `(1 + λ)·OPT`. The
//! `uniform_greedy_tightness` / `uniform_endfit_tightness` constructions in
//! `fjs-adversary` realize the bound exactly.
//!
//! **Why `2` holds for [`UnitAligned`]:** its decision rule is exactly
//! Batch+ (which never reads lengths either), so Theorem 3.5's tight
//! `μ + 1` bound applies with `μ = 1`. The equivalence is by construction —
//! [`UnitAligned`] runs a [`BatchPlusState`] — and is additionally pinned
//! decision-for-decision by a registry test. `uniform_aligned_tightness`
//! drives the ratio arbitrarily close to `2`.

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};

use crate::batch_plus::BatchPlusState;
use crate::flag_graph::FlagRecorder;

/// Aligned batching at unit length: flag the earliest pending deadline,
/// start everything pending with it, keep the door open while the flag
/// runs. Decision-identical to Batch+ (both are length-blind), hence
/// `2`-competitive on uniform instances by Theorem 3.5 at `μ = 1` — and
/// that bound is *tight* for this rule (the seed paper's Figure 3 family
/// collapses to a unit-length staircase that still works, see
/// `uniform_aligned_tightness`).
///
/// ```
/// use fjs_core::prelude::*;
/// use fjs_schedulers::UnitAligned;
///
/// let inst = Instance::new(vec![
///     Job::adp(0.0, 4.0, 1.0),
///     Job::adp(1.0, 9.0, 1.0),
/// ]);
/// let out = run_static(&inst, Clairvoyance::NonClairvoyant, UnitAligned::new());
/// assert!(out.is_feasible());
/// // Both stack on the earliest pending deadline (t = 4): span 1.
/// assert_eq!(out.span, dur(1.0));
/// ```
#[derive(Clone, Default, Debug)]
pub struct UnitAligned {
    state: BatchPlusState,
}

impl UnitAligned {
    /// Creates an aligned-batching scheduler.
    pub fn new() -> Self {
        UnitAligned::default()
    }
}

impl FlagRecorder for UnitAligned {
    fn flag_jobs(&self) -> Vec<JobId> {
        self.state.flags().to_vec()
    }
}

impl OnlineScheduler for UnitAligned {
    fn name(&self) -> String {
        "UnitAligned".into()
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        self.state.job_arrived(job.id, ctx);
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        self.state.job_deadline(id, ctx);
    }

    fn on_completion(&mut self, id: JobId, _length: fjs_core::time::Dur, _ctx: &mut Ctx<'_>) {
        self.state.job_completed(id);
    }
}

/// Start every job the moment it arrives. On uniform instances this is
/// `(1 + λ)`-competitive (see the module docs for the dilation proof) —
/// in stark contrast to the mixed-length regime, where the same rule
/// (Eager) has unbounded ratio. The bound is *exactly* tight: grouped
/// staggered arrivals sharing one feasible meeting point force ratio
/// `1 + λ` at integer `λ` (`uniform_greedy_tightness`).
///
/// ```
/// use fjs_core::prelude::*;
/// use fjs_schedulers::UnitGreedy;
///
/// let inst = Instance::new(vec![Job::adp(0.0, 3.0, 1.0), Job::adp(0.5, 8.0, 1.0)]);
/// let out = run_static(&inst, Clairvoyance::NonClairvoyant, UnitGreedy);
/// assert!(out.is_feasible());
/// assert_eq!(out.span, dur(1.5)); // [0, 1) ∪ [0.5, 1.5)
/// ```
#[derive(Clone, Copy, Default, Debug)]
pub struct UnitGreedy;

impl OnlineScheduler for UnitGreedy {
    fn name(&self) -> String {
        "UnitGreedy".into()
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        ctx.start(job.id);
    }

    fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
        // Unreachable: nothing is ever pending at a deadline.
    }
}

/// Start every job at the *end* of its window (its starting deadline). The
/// mirror image of [`UnitGreedy`]: on uniform instances the same dilation
/// argument gives `(1 + λ)`-competitiveness, and a common-arrival staircase
/// of distinct deadlines realizes ratio `λ` (`uniform_endfit_tightness`),
/// pinning the guarantee to within one unit of optimal play.
///
/// ```
/// use fjs_core::prelude::*;
/// use fjs_schedulers::UnitEndfit;
///
/// let inst = Instance::new(vec![Job::adp(0.0, 2.0, 1.0), Job::adp(0.0, 2.0, 1.0)]);
/// let out = run_static(&inst, Clairvoyance::NonClairvoyant, UnitEndfit);
/// assert!(out.is_feasible());
/// assert_eq!(out.span, dur(1.0)); // both stack at their shared deadline
/// ```
#[derive(Clone, Copy, Default, Debug)]
pub struct UnitEndfit;

impl OnlineScheduler for UnitEndfit {
    fn name(&self) -> String {
        "UnitEndfit".into()
    }

    fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        ctx.start(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_plus::BatchPlus;
    use fjs_core::prelude::*;

    fn uniform_inst() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 0.0, 1.0), // rigid
            Job::adp(0.5, 4.0, 1.0),
            Job::adp(2.0, 2.5, 1.0),
            Job::adp(2.0, 6.0, 1.0),
        ])
    }

    #[test]
    fn all_three_are_feasible_on_uniform_instances() {
        for out in [
            run_static(
                &uniform_inst(),
                Clairvoyance::NonClairvoyant,
                UnitAligned::new(),
            ),
            run_static(&uniform_inst(), Clairvoyance::NonClairvoyant, UnitGreedy),
            run_static(&uniform_inst(), Clairvoyance::NonClairvoyant, UnitEndfit),
        ] {
            assert!(out.is_feasible());
            assert!(out.schedule.validate(&out.instance).is_ok());
        }
    }

    #[test]
    fn unit_aligned_matches_batch_plus_decisions() {
        // The coincidence theorem, at the unit level: same starts, same
        // flags, on a uniform instance.
        let inst = uniform_inst();
        let mut ua = UnitAligned::new();
        let mut bp = BatchPlus::new();
        let a = run_static(&inst, Clairvoyance::NonClairvoyant, &mut ua);
        let b = run_static(&inst, Clairvoyance::NonClairvoyant, &mut bp);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(ua.flag_jobs(), bp.flag_jobs());
    }

    #[test]
    fn collapse_clairvoyant_and_non_clairvoyant_runs_agree() {
        // None of the three reads lengths, so revealing them changes nothing.
        let inst = uniform_inst();
        let a = run_static(&inst, Clairvoyance::NonClairvoyant, UnitAligned::new());
        let b = run_static(&inst, Clairvoyance::Clairvoyant, UnitAligned::new());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.span, b.span);
    }

    #[test]
    fn unit_greedy_is_eagerness() {
        let out = run_static(&uniform_inst(), Clairvoyance::NonClairvoyant, UnitGreedy);
        for (id, job) in out.instance.iter() {
            assert_eq!(out.schedule.start(id), Some(job.arrival()));
        }
    }

    #[test]
    fn unit_endfit_starts_at_deadlines() {
        let out = run_static(&uniform_inst(), Clairvoyance::NonClairvoyant, UnitEndfit);
        for (id, job) in out.instance.iter() {
            assert_eq!(out.schedule.start(id), Some(job.deadline()));
        }
    }

    #[test]
    fn rigid_uniform_instance_ties_all_three() {
        // λ = 0 → both 1+λ bounds read 1: every scheduler is optimal.
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 1.0),
            Job::adp(0.5, 0.5, 1.0),
            Job::adp(3.0, 3.0, 1.0),
        ]);
        let spans: Vec<Dur> = [
            run_static(&inst, Clairvoyance::NonClairvoyant, UnitAligned::new()).span,
            run_static(&inst, Clairvoyance::NonClairvoyant, UnitGreedy).span,
            run_static(&inst, Clairvoyance::NonClairvoyant, UnitEndfit).span,
        ]
        .into();
        assert!(spans.iter().all(|&s| s == spans[0]));
        assert_eq!(spans[0], dur(2.5)); // [0, 1.5) ∪ [3, 4)
    }
}
