//! The **Batch** scheduler (Section 3.2, Theorem 3.4).
//!
//! Batch proceeds in iterations. In each iteration it waits until some
//! pending job `J` hits its starting deadline `d(J)` — `J` is the *flag job*
//! of the iteration — and at that instant starts **all** pending jobs
//! simultaneously. It then waits for the next pending job to hit its
//! deadline.
//!
//! For Non-Clairvoyant FJS, Batch is `(2μ+1)`-competitive and no better than
//! `2μ`-competitive, where `μ` is the max/min processing-length ratio
//! (Theorem 3.4; experiment E2 reproduces the `2μ` tightness instance of
//! Figure 2).

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};

use crate::flag_graph::FlagRecorder;

/// The Batch scheduler. Works in both information models (it never looks at
/// processing lengths).
#[derive(Clone, Default, Debug)]
pub struct Batch {
    flags: Vec<JobId>,
}

impl Batch {
    /// Creates a Batch scheduler.
    pub fn new() -> Self {
        Batch::default()
    }
}

impl FlagRecorder for Batch {
    fn flag_jobs(&self) -> Vec<JobId> {
        self.flags.clone()
    }
}

impl OnlineScheduler for Batch {
    fn name(&self) -> String {
        "Batch".into()
    }

    fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {
        // Buffer: jobs wait until some pending job hits its deadline.
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        // `id` is the flag job of this iteration (the engine only delivers
        // deadline alarms for still-pending jobs, so if several jobs share
        // the deadline the first alarm elects the flag and starts the rest;
        // their own alarms then find them already started).
        self.flags.push(id);
        ctx.start_all_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    #[test]
    fn batch_starts_everything_at_first_deadline() {
        // Three jobs; J0's deadline at t=2 triggers the only iteration.
        let inst = Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(0.5, 9.0, 1.0),
            Job::adp(1.0, 7.0, 3.0),
        ]);
        let mut sched = Batch::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        for i in 0..3 {
            assert_eq!(out.schedule.start(JobId(i)), Some(t(2.0)));
        }
        assert_eq!(out.span, dur(3.0));
        assert_eq!(sched.flag_jobs(), &[JobId(0)]);
    }

    #[test]
    fn batch_runs_multiple_iterations() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 1.0),
            Job::adp(0.0, 10.0, 1.0),
            Job::adp(5.0, 6.0, 1.0), // arrives after iteration 1 started
        ]);
        let mut sched = Batch::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        // Iteration 1 at t=1 starts J0 and J1; iteration 2 at t=6 starts J2.
        assert_eq!(out.schedule.start(JobId(0)), Some(t(1.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(1.0)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(6.0)));
        assert_eq!(out.span, dur(2.0));
        assert_eq!(sched.flag_jobs(), &[JobId(0), JobId(2)]);
    }

    #[test]
    fn batch_does_not_start_arrivals_mid_iteration() {
        // Unlike Batch+, a job arriving while others run is buffered until
        // *its own* (or an earlier) pending deadline.
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 10.0), Job::adp(1.0, 20.0, 1.0)]);
        let mut sched = Batch::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(
            out.schedule.start(JobId(1)),
            Some(t(20.0)),
            "waits for its deadline"
        );
        assert_eq!(out.span, dur(11.0));
    }

    #[test]
    fn same_deadline_jobs_share_one_iteration() {
        let inst = Instance::new(vec![Job::adp(0.0, 3.0, 1.0), Job::adp(1.0, 3.0, 2.0)]);
        let mut sched = Batch::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(3.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(3.0)));
        assert_eq!(sched.flag_jobs().len(), 1, "one flag per iteration");
    }
}
