//! Flag jobs and the flag-job graph `G(F, E)` of Section 4.3.
//!
//! The analysis of the Profit scheduler builds a directed graph over the
//! designated flag jobs: for a flag `J`, the set `X(J)` holds the flags `J'`
//! that arrive before `J`'s latest completion (`a(J') < d(J)+p(J)`) and are
//! started after `J` (`d(J) < d(J')`). If `X(J)` is non-empty, the member
//! with the earliest starting deadline becomes `J`'s *parent*, contributing
//! the edge `parent → J`. Lemma 4.7 proves the result is a forest of rooted
//! trees; Lemma 4.9 proves that flags in different trees can never overlap
//! under *any* scheduler. Experiment E6 verifies these structural facts on
//! real runs, and the [`FlagGraph`] type is also reused by tests of
//! Lemma 4.6.

use fjs_core::job::{Instance, JobId};
use fjs_core::sim::SimOutcome;
use fjs_core::time::{Dur, Time};

/// A scheduler that designates flag jobs (Batch, Batch+, CDB, Profit).
pub trait FlagRecorder {
    /// The flag jobs designated so far, in a deterministic order.
    fn flag_jobs(&self) -> Vec<JobId>;
}

/// Snapshot of one flag job's parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FlagInfo {
    /// The job id in the simulation/instance.
    pub id: JobId,
    /// Arrival `a(J)`.
    pub arrival: Time,
    /// Starting deadline `d(J)` (the flag's start time under Batch+/Profit).
    pub deadline: Time,
    /// Processing length `p(J)`.
    pub length: Dur,
}

impl FlagInfo {
    /// Latest possible completion `d(J) + p(J)` (the actual completion for
    /// a flag, which starts at its deadline).
    pub fn completion(&self) -> Time {
        self.deadline + self.length
    }
}

/// The directed flag-job graph `G(F, E)` with parent pointers.
#[derive(Clone, Debug)]
pub struct FlagGraph {
    nodes: Vec<FlagInfo>,
    /// `parent[i]` is the index of node `i`'s parent, if `X(J_i) ≠ ∅`.
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl FlagGraph {
    /// Builds the graph from flag-job parameters (Section 4.3 construction).
    pub fn build(nodes: Vec<FlagInfo>) -> Self {
        let n = nodes.len();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for (i, j) in nodes.iter().enumerate() {
            // X(J): flags that arrive before J completes and start after J.
            let best = nodes
                .iter()
                .enumerate()
                .filter(|(q, cand)| {
                    *q != i && cand.arrival < j.completion() && j.deadline < cand.deadline
                })
                .min_by(|(_, a), (_, b)| a.deadline.cmp(&b.deadline).then(a.id.cmp(&b.id)))
                .map(|(q, _)| q);
            if let Some(q) = best {
                parent[i] = Some(q);
                children[q].push(i);
            }
        }
        FlagGraph {
            nodes,
            parent,
            children,
        }
    }

    /// Extracts flag parameters from a finished run and builds the graph.
    pub fn from_outcome(outcome: &SimOutcome, flags: &[JobId]) -> Self {
        Self::build(flag_infos(&outcome.instance, flags))
    }

    /// Number of flag jobs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The flag nodes in build order.
    pub fn nodes(&self) -> &[FlagInfo] {
        &self.nodes
    }

    /// Parent index of node `i`, if any.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Children indices of node `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Indices of root jobs (`X(J) = ∅`).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.parent[i].is_none())
            .collect()
    }

    /// Number of rooted trees.
    pub fn num_trees(&self) -> usize {
        self.roots().len()
    }

    /// Whether the parent structure is a forest (acyclic). Lemma 4.7 proves
    /// this always holds; the check walks parent chains with a visited set.
    pub fn is_forest(&self) -> bool {
        // Each node has at most one parent by construction, so a cycle is
        // the only possible violation.
        let n = self.nodes.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            loop {
                if state[cur] == 1 {
                    return false; // found a cycle
                }
                if state[cur] == 2 {
                    break;
                }
                state[cur] = 1;
                path.push(cur);
                match self.parent[cur] {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            for v in path {
                state[v] = 2;
            }
        }
        true
    }

    /// Height of the tree rooted at `root` (edges on the longest root-leaf
    /// path; 0 for a singleton).
    pub fn height(&self, root: usize) -> usize {
        let mut best = 0;
        let mut stack = vec![(root, 0usize)];
        while let Some((v, d)) = stack.pop() {
            best = best.max(d);
            for &c in &self.children[v] {
                stack.push((c, d + 1));
            }
        }
        best
    }

    /// `(root, size, height)` for each tree.
    pub fn tree_stats(&self) -> Vec<TreeStats> {
        self.roots()
            .into_iter()
            .map(|root| {
                let mut size = 0;
                let mut stack = vec![root];
                while let Some(v) = stack.pop() {
                    size += 1;
                    stack.extend_from_slice(&self.children[v]);
                }
                TreeStats {
                    root,
                    size,
                    height: self.height(root),
                }
            })
            .collect()
    }

    /// Checks Lemma 4.6 on the node set: for any two flags, the one with
    /// the earlier starting deadline completes no later than the other.
    /// Returns the first violating index pair if any.
    pub fn check_lemma_4_6(&self) -> Result<(), (usize, usize)> {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| self.nodes[i].deadline);
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            if self.nodes[a].deadline < self.nodes[b].deadline
                && self.nodes[a].completion() > self.nodes[b].completion()
            {
                return Err((a, b));
            }
        }
        Ok(())
    }

    /// Checks Lemma 4.9 on the node set: flags with no path between them
    /// (i.e. in different trees) can never overlap under any scheduler
    /// (`never_overlaps` on the underlying windows). Returns the first
    /// violating index pair if any.
    pub fn check_lemma_4_9(&self) -> Result<(), (usize, usize)> {
        let comp = self.tree_assignment();
        for i in 0..self.nodes.len() {
            for j in (i + 1)..self.nodes.len() {
                if comp[i] != comp[j] {
                    let (a, b) = (&self.nodes[i], &self.nodes[j]);
                    let disjoint = b.arrival >= a.completion() || a.arrival >= b.completion();
                    if !disjoint {
                        return Err((i, j));
                    }
                }
            }
        }
        Ok(())
    }

    /// For each node, the root index of its tree.
    pub fn tree_assignment(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut comp = vec![usize::MAX; n];
        for root in self.roots() {
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                comp[v] = root;
                stack.extend_from_slice(&self.children[v]);
            }
        }
        comp
    }
}

/// Per-tree statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeStats {
    /// Index of the root node.
    pub root: usize,
    /// Number of nodes in the tree.
    pub size: usize,
    /// Longest root-to-leaf path (in edges).
    pub height: usize,
}

/// Collects [`FlagInfo`]s for a set of flag ids from an instance.
pub fn flag_infos(inst: &Instance, flags: &[JobId]) -> Vec<FlagInfo> {
    flags
        .iter()
        .map(|&id| {
            let j = inst.job(id);
            FlagInfo {
                id,
                arrival: j.arrival(),
                deadline: j.deadline(),
                length: j.length(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::time::{dur, t};

    fn fi(id: u32, a: f64, d: f64, p: f64) -> FlagInfo {
        FlagInfo {
            id: JobId(id),
            arrival: t(a),
            deadline: t(d),
            length: dur(p),
        }
    }

    #[test]
    fn singleton_is_a_root() {
        let g = FlagGraph::build(vec![fi(0, 0.0, 1.0, 2.0)]);
        assert_eq!(g.roots(), vec![0]);
        assert!(g.is_forest());
        assert_eq!(g.height(0), 0);
        assert_eq!(g.num_trees(), 1);
    }

    #[test]
    fn parent_is_earliest_deadline_in_x() {
        // J0 completes at d+p = 5+1 = 6.
        // J1 (d=8) and J2 (d=10) both arrive before 6 and start after J0:
        // both in X(J0); parent = J1 (earlier deadline).
        let g = FlagGraph::build(vec![
            fi(0, 0.0, 5.0, 1.0),
            fi(1, 1.0, 8.0, 5.0),
            fi(2, 2.0, 10.0, 9.0),
        ]);
        assert_eq!(g.parent(0), Some(1));
        // X(J1): flags arriving before 13 with deadline > 8 → J2.
        assert_eq!(g.parent(1), Some(2));
        assert_eq!(g.parent(2), None);
        assert!(g.is_forest());
        assert_eq!(g.num_trees(), 1);
        assert_eq!(g.height(2), 2);
        assert_eq!(g.children(2), &[1]);
    }

    #[test]
    fn disjoint_flags_form_separate_trees() {
        // J1 arrives after J0's latest completion → X sets empty both ways.
        let g = FlagGraph::build(vec![fi(0, 0.0, 1.0, 2.0), fi(1, 5.0, 6.0, 2.0)]);
        assert_eq!(g.num_trees(), 2);
        assert!(g.check_lemma_4_9().is_ok());
    }

    #[test]
    fn lemma_4_6_check_flags_profit_violation() {
        // Earlier deadline but later completion: not a Profit flag set.
        let g = FlagGraph::build(vec![fi(0, 0.0, 1.0, 100.0), fi(1, 0.0, 2.0, 1.0)]);
        assert!(g.check_lemma_4_6().is_err());
    }

    #[test]
    fn lemma_4_6_accepts_ordered_completions() {
        let g = FlagGraph::build(vec![fi(0, 0.0, 1.0, 1.0), fi(1, 0.0, 2.0, 3.0)]);
        assert!(g.check_lemma_4_6().is_ok());
    }

    #[test]
    fn tree_stats_cover_all_nodes() {
        let g = FlagGraph::build(vec![
            fi(0, 0.0, 5.0, 1.0),
            fi(1, 1.0, 8.0, 5.0),
            fi(2, 100.0, 101.0, 1.0),
        ]);
        let stats = g.tree_stats();
        let total: usize = stats.iter().map(|s| s.size).sum();
        assert_eq!(total, 3);
        assert_eq!(
            g.tree_assignment()
                .iter()
                .filter(|&&c| c == usize::MAX)
                .count(),
            0
        );
    }

    #[test]
    fn forest_check_rejects_fabricated_cycle() {
        // Hand-build a cyclic parent structure to exercise the checker
        // (cannot arise from `build`, per Lemma 4.7).
        let nodes = vec![fi(0, 0.0, 1.0, 1.0), fi(1, 0.0, 2.0, 1.0)];
        let g = FlagGraph {
            nodes,
            parent: vec![Some(1), Some(0)],
            children: vec![vec![1], vec![0]],
        };
        assert!(!g.is_forest());
    }

    #[test]
    fn empty_graph() {
        let g = FlagGraph::build(vec![]);
        assert!(g.is_empty());
        assert!(g.is_forest());
        assert_eq!(g.num_trees(), 0);
        assert!(g.check_lemma_4_6().is_ok());
        assert!(g.check_lemma_4_9().is_ok());
    }
}
