//! Baseline schedulers the paper argues about in prose.
//!
//! Section 3.2: *"an eager scheduler that starts every job immediately at
//! its arrival cannot achieve any bounded competitive ratio … Similarly, a
//! lazy scheduler that delays the start of each job till its starting
//! deadline cannot achieve any bounded competitive ratio either."* Both are
//! implemented here as experimental baselines (they are feasible, just not
//! competitive).

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};

/// Starts every job immediately at its arrival.
///
/// Never exploits laxity; unboundedly non-competitive (Section 3.2) but
/// works in both information models.
#[derive(Clone, Copy, Default, Debug)]
pub struct Eager;

impl OnlineScheduler for Eager {
    fn name(&self) -> String {
        "Eager".into()
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        ctx.start(job.id);
    }

    fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
        // Unreachable for Eager: nothing is ever pending at a deadline.
    }
}

/// Delays every job until its starting deadline.
///
/// Takes no advantage of the flexibility the laxity offers; unboundedly
/// non-competitive (Section 3.2) but feasible in both information models.
#[derive(Clone, Copy, Default, Debug)]
pub struct Lazy;

impl OnlineScheduler for Lazy {
    fn name(&self) -> String {
        "Lazy".into()
    }

    fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        ctx.start(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    fn inst() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 3.0, 1.0),
            Job::adp(1.0, 4.0, 2.0),
            Job::adp(2.0, 2.0, 1.0), // rigid
        ])
    }

    #[test]
    fn eager_span() {
        let out = run_static(&inst(), Clairvoyance::NonClairvoyant, Eager);
        assert!(out.is_feasible());
        // [0,1) ∪ [1,3) ∪ [2,3) → [0,3).
        assert_eq!(out.span, dur(3.0));
    }

    #[test]
    fn lazy_span() {
        let out = run_static(&inst(), Clairvoyance::NonClairvoyant, Lazy);
        assert!(out.is_feasible());
        // [3,4) ∪ [4,6) ∪ [2,3) → [2,6).
        assert_eq!(out.span, dur(4.0));
    }

    #[test]
    fn eager_unbounded_ratio_witness() {
        // n short jobs with huge laxity arriving staggered: Eager spreads
        // them out (span n), an optimal scheduler stacks them (span ~1).
        let n = 50;
        let jobs: Vec<Job> = (0..n).map(|i| Job::adp(i as f64, 1000.0, 1.0)).collect();
        let inst = Instance::new(jobs);
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, Eager);
        assert_eq!(out.span, dur(n as f64));
        // Stacking all at t=1000 gives span 1 → ratio n, unbounded in n.
    }

    #[test]
    fn lazy_unbounded_ratio_witness() {
        // n short jobs with *distinct* deadlines far apart: Lazy induces
        // span n while starting them all together at arrival gives span 1.
        let n = 50;
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job::adp(0.0, 10.0 * (i + 1) as f64, 1.0))
            .collect();
        let inst = Instance::new(jobs);
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, Lazy);
        assert_eq!(out.span, dur(n as f64));
    }
}
