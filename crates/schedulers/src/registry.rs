//! A value-level registry of every scheduler in this crate, so experiment
//! harnesses, CLIs and benches can enumerate, build and run schedulers
//! uniformly.

use fjs_core::job::Instance;
use fjs_core::sim::{run_static, Clairvoyance, OnlineScheduler, SimOutcome};

use crate::baseline::{Eager, Lazy};
use crate::batch::Batch;
use crate::batch_plus::BatchPlus;
use crate::cdb::{cdb_bound, optimal_alpha, ClassifyByDuration};
use crate::doubler::Doubler;
use crate::extensions::{RandomStart, Threshold};
use crate::profit::{profit_bound, Profit, OPTIMAL_K};
use crate::semi_cdb::SemiCdb;
use crate::uniform::{UnitAligned, UnitEndfit, UnitGreedy};

/// A buildable description of one scheduler configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SchedulerKind {
    /// Start at arrival (baseline).
    Eager,
    /// Start at deadline (baseline).
    Lazy,
    /// Batch (Theorem 3.4).
    Batch,
    /// Batch+ (Theorem 3.5).
    BatchPlus,
    /// Classify-by-Duration Batch+ (Theorem 4.4).
    Cdb {
        /// Class ratio `α > 1`.
        alpha: f64,
        /// Base length `b > 0`.
        base: f64,
    },
    /// Profit (Theorem 4.11).
    Profit {
        /// Profitability parameter `k > 1`.
        k: f64,
    },
    /// Doubler baseline (Koehler–Khuller reconstruction).
    Doubler {
        /// Waiting budget factor `c > 0`.
        c: f64,
    },
    /// Randomized feasible baseline (extension; seeded).
    RandomStart {
        /// RNG seed.
        seed: u64,
    },
    /// Count-triggered batching ablation (extension).
    Threshold {
        /// Pending-count trigger `m >= 1`.
        m: usize,
    },
    /// Semi-clairvoyant CDB: only length classes revealed (extension).
    SemiCdb,
    /// Aligned batching for uniform jobs (Liu–Khuller–Tang family):
    /// 2-competitive on uniform instances.
    UnitAligned,
    /// Start-at-arrival for uniform jobs: `(1+λ)`-competitive on uniform
    /// instances (λ = normalized laxity).
    UnitGreedy,
    /// Start-at-window-end for uniform jobs: `(1+λ)`-competitive on
    /// uniform instances.
    UnitEndfit,
}

impl SchedulerKind {
    /// CDB at its analytically optimal `α`.
    pub fn cdb_optimal() -> Self {
        SchedulerKind::Cdb {
            alpha: optimal_alpha(),
            base: 1.0,
        }
    }

    /// Profit at its analytically optimal `k`.
    pub fn profit_optimal() -> Self {
        SchedulerKind::Profit { k: OPTIMAL_K }
    }

    /// Builds a fresh scheduler instance.
    pub fn build(&self) -> Box<dyn OnlineScheduler> {
        match *self {
            SchedulerKind::Eager => Box::new(Eager),
            SchedulerKind::Lazy => Box::new(Lazy),
            SchedulerKind::Batch => Box::new(Batch::new()),
            SchedulerKind::BatchPlus => Box::new(BatchPlus::new()),
            SchedulerKind::Cdb { alpha, base } => Box::new(ClassifyByDuration::new(alpha, base)),
            SchedulerKind::Profit { k } => Box::new(Profit::new(k)),
            SchedulerKind::Doubler { c } => Box::new(Doubler::new(c)),
            SchedulerKind::RandomStart { seed } => Box::new(RandomStart::new(seed)),
            SchedulerKind::Threshold { m } => Box::new(Threshold::new(m)),
            SchedulerKind::SemiCdb => Box::new(SemiCdb::new()),
            SchedulerKind::UnitAligned => Box::new(UnitAligned::new()),
            SchedulerKind::UnitGreedy => Box::new(UnitGreedy),
            SchedulerKind::UnitEndfit => Box::new(UnitEndfit),
        }
    }

    /// Whether the scheduler must be run fully clairvoyantly.
    pub fn requires_clairvoyance(&self) -> bool {
        matches!(
            self,
            SchedulerKind::Cdb { .. }
                | SchedulerKind::Profit { .. }
                | SchedulerKind::Doubler { .. }
        )
    }

    /// The weakest information model the scheduler supports.
    pub fn information_model(&self) -> Clairvoyance {
        if self.requires_clairvoyance() {
            Clairvoyance::Clairvoyant
        } else if matches!(self, SchedulerKind::SemiCdb) {
            Clairvoyance::ClassOnly
        } else {
            Clairvoyance::NonClairvoyant
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// The canonical CLI short name for this configuration.
    pub fn short_name(&self) -> &'static str {
        match self {
            SchedulerKind::Eager => "eager",
            SchedulerKind::Lazy => "lazy",
            SchedulerKind::Batch => "batch",
            SchedulerKind::BatchPlus => "batch+",
            SchedulerKind::Cdb { .. } => "cdb",
            SchedulerKind::Profit { .. } => "profit",
            SchedulerKind::Doubler { .. } => "doubler",
            SchedulerKind::RandomStart { .. } => "random",
            SchedulerKind::Threshold { .. } => "threshold",
            SchedulerKind::SemiCdb => "semicdb",
            SchedulerKind::UnitAligned => "ualign",
            SchedulerKind::UnitGreedy => "ugreedy",
            SchedulerKind::UnitEndfit => "uendfit",
        }
    }

    /// Parses a CLI short name into the canonical configuration of that
    /// scheduler (optimal parameters where the paper prescribes them, the
    /// registered defaults for the extensions). Inverse of
    /// [`SchedulerKind::short_name`] on every registered kind.
    pub fn from_short_name(name: &str) -> Option<SchedulerKind> {
        Some(match name {
            "eager" => SchedulerKind::Eager,
            "lazy" => SchedulerKind::Lazy,
            "batch" => SchedulerKind::Batch,
            "batch+" | "batchplus" => SchedulerKind::BatchPlus,
            "cdb" => SchedulerKind::cdb_optimal(),
            "profit" => SchedulerKind::profit_optimal(),
            "doubler" => SchedulerKind::Doubler { c: 1.0 },
            "random" => SchedulerKind::RandomStart { seed: 42 },
            "threshold" => SchedulerKind::Threshold { m: 4 },
            "semicdb" => SchedulerKind::SemiCdb,
            "ualign" => SchedulerKind::UnitAligned,
            "ugreedy" => SchedulerKind::UnitGreedy,
            "uendfit" => SchedulerKind::UnitEndfit,
            _ => return None,
        })
    }

    /// The proven worst-case competitive ratio for an instance with length
    /// ratio `μ`, or `None` if the scheduler has no span guarantee (the
    /// baselines and extensions are all unboundedly bad in the worst case).
    ///
    /// The returned bound is a *contract*: on any instance with length
    /// ratio at most `μ`, the scheduler's span must be within this factor
    /// of the optimal span (Theorems 3.4, 3.5, 4.4 and 4.11).
    pub fn ratio_bound(&self, mu: f64) -> Option<f64> {
        match *self {
            SchedulerKind::Batch => Some(2.0 * mu + 1.0),
            SchedulerKind::BatchPlus => Some(mu + 1.0),
            SchedulerKind::Cdb { alpha, .. } => Some(cdb_bound(alpha)),
            SchedulerKind::Profit { k } => Some(profit_bound(k)),
            // UnitAligned's decision rule is Batch+ (both length-blind), so
            // Theorem 3.5's tight μ+1 applies verbatim; at the uniform
            // family's home regime μ = 1 this reads 2.
            SchedulerKind::UnitAligned => Some(mu + 1.0),
            _ => None,
        }
    }

    /// The proven worst-case competitive ratio *for this concrete instance*,
    /// or `None` when no guarantee applies to it. The default delegates to
    /// [`SchedulerKind::ratio_bound`] at the instance's `μ`; the uniform
    /// family's guarantees are instead parameterized by the instance's
    /// normalized laxity `λ` and apply only when all lengths are equal:
    ///
    /// * [`SchedulerKind::UnitAligned`] — `2` on uniform instances (also
    ///   reachable through the default path since uniform means `μ = 1`);
    /// * [`SchedulerKind::UnitGreedy`] / [`SchedulerKind::UnitEndfit`] —
    ///   `1 + λ` on uniform instances, no guarantee otherwise.
    ///
    /// This is the contract the conformance ratio oracle enforces against
    /// the exact DP optimum.
    pub fn ratio_bound_on(&self, inst: &Instance) -> Option<f64> {
        match *self {
            SchedulerKind::UnitGreedy | SchedulerKind::UnitEndfit => {
                Some(1.0 + inst.uniform_laxity_ratio()?)
            }
            SchedulerKind::UnitAligned => {
                // Only claim the bound in the family's own regime; mixed
                // lengths fall outside the uniform paper's theorems even
                // though the Batch+ coincidence would justify μ+1.
                inst.uniform_length().map(|_| 2.0)
            }
            _ => self.ratio_bound(inst.mu()?),
        }
    }

    /// Whether this kind carries *any* span guarantee checkable by the
    /// conformance harness (i.e. [`SchedulerKind::ratio_bound_on`] can
    /// return `Some` for suitable instances).
    pub fn has_ratio_bound(&self) -> bool {
        self.ratio_bound(1.0).is_some()
            || matches!(self, SchedulerKind::UnitGreedy | SchedulerKind::UnitEndfit)
    }

    /// Whether this kind belongs to the uniform-jobs family (Liu–Khuller–
    /// Tang): guarantees stated for equal-length instances only.
    pub fn is_uniform_family(&self) -> bool {
        matches!(
            self,
            SchedulerKind::UnitAligned | SchedulerKind::UnitGreedy | SchedulerKind::UnitEndfit
        )
    }

    /// The registry invariant of the uniform family: the scheduler never
    /// reads processing lengths, so clairvoyant and non-clairvoyant runs
    /// are bit-identical — at unit length the two information models
    /// collapse and the distinction is moot. Pinned by a cross-model
    /// bit-identity test.
    pub fn clairvoyance_collapses(&self) -> bool {
        self.is_uniform_family()
    }

    /// Whether the scheduler's decisions are invariant under translating
    /// every time field (arrivals and deadlines) by a common offset: a
    /// shifted instance must yield the same schedule shifted by the same
    /// offset, hence an identical span. True for every registered
    /// scheduler — none consults absolute time.
    pub fn translation_invariant(&self) -> bool {
        true
    }

    /// Whether the scheduler's decisions are invariant under scaling every
    /// time field by a common positive factor. False for the class-based
    /// schedulers (CDB, SemiCdb): their geometric length classes are
    /// anchored at an absolute base length, so scaling moves jobs across
    /// class boundaries and legitimately changes the schedule shape.
    pub fn scale_invariant(&self) -> bool {
        !matches!(self, SchedulerKind::Cdb { .. } | SchedulerKind::SemiCdb)
    }

    /// Runs the scheduler on a static instance under the weakest
    /// information model it supports (so Section 3 schedulers are
    /// exercised exactly as analyzed, and SemiCdb runs class-only).
    pub fn run_on(&self, inst: &Instance) -> SimOutcome {
        run_static(inst, self.information_model(), self.build())
    }

    /// The schedulers analyzed for the non-clairvoyant setting (Section 3),
    /// plus the prose baselines.
    pub fn non_clairvoyant_set() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Eager,
            SchedulerKind::Lazy,
            SchedulerKind::Batch,
            SchedulerKind::BatchPlus,
        ]
    }

    /// The schedulers analyzed for the clairvoyant setting (Section 4) with
    /// their optimal parameters, plus the Doubler baseline.
    pub fn clairvoyant_set() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::cdb_optimal(),
            SchedulerKind::profit_optimal(),
            SchedulerKind::Doubler { c: 1.0 },
        ]
    }

    /// Every scheduler configuration used in head-to-head experiments.
    pub fn full_set() -> Vec<SchedulerKind> {
        let mut all = Self::non_clairvoyant_set();
        all.extend(Self::clairvoyant_set());
        all
    }

    /// The uniform-jobs scheduler family (Liu–Khuller–Tang), in canonical
    /// order: aligned batching, start-at-arrival, start-at-window-end.
    pub fn uniform_set() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::UnitAligned,
            SchedulerKind::UnitGreedy,
            SchedulerKind::UnitEndfit,
        ]
    }

    /// Every registered scheduler configuration, including the extension
    /// schedulers that head-to-head experiments omit and the uniform-jobs
    /// family. This is the population the fault-injection harness
    /// exercises: anything buildable must survive chaos.
    pub fn registered_set() -> Vec<SchedulerKind> {
        let mut all = Self::full_set();
        all.extend([
            SchedulerKind::RandomStart { seed: 42 },
            SchedulerKind::Threshold { m: 4 },
            SchedulerKind::SemiCdb,
        ]);
        all.extend(Self::uniform_set());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;

    fn small_instance() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(0.5, 4.0, 2.0),
            Job::adp(3.0, 3.0, 1.5),
        ])
    }

    #[test]
    fn every_kind_builds_and_runs_feasibly() {
        let inst = small_instance();
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            assert!(out.is_feasible(), "{} produced violations", kind.label());
            assert!(
                out.schedule.validate(&out.instance).is_ok(),
                "{}",
                kind.label()
            );
            assert!(out.span.is_positive(), "{}", kind.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = SchedulerKind::full_set()
            .iter()
            .map(|k| k.label())
            .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels: {labels:?}");
    }

    #[test]
    fn short_names_round_trip() {
        for kind in SchedulerKind::registered_set() {
            let parsed = SchedulerKind::from_short_name(kind.short_name())
                .unwrap_or_else(|| panic!("{} did not parse", kind.short_name()));
            assert_eq!(parsed, kind, "{} did not round-trip", kind.short_name());
        }
        assert_eq!(
            SchedulerKind::from_short_name("batchplus"),
            Some(SchedulerKind::BatchPlus)
        );
        assert_eq!(SchedulerKind::from_short_name("nope"), None);
    }

    #[test]
    fn ratio_bounds_match_theorems() {
        let mu = 3.0;
        assert_eq!(SchedulerKind::Batch.ratio_bound(mu), Some(7.0));
        assert_eq!(SchedulerKind::BatchPlus.ratio_bound(mu), Some(4.0));
        assert!(SchedulerKind::cdb_optimal().ratio_bound(mu).is_some());
        assert!(SchedulerKind::profit_optimal().ratio_bound(mu).is_some());
        assert_eq!(SchedulerKind::Eager.ratio_bound(mu), None);
        assert_eq!(SchedulerKind::Lazy.ratio_bound(mu), None);
        assert_eq!(SchedulerKind::Doubler { c: 1.0 }.ratio_bound(mu), None);
    }

    #[test]
    fn mu_one_degenerate_bounds_pin_the_shared_regime() {
        // At uniform lengths the seed paper's bounds collapse to constants:
        // Batch+ reads μ+1 = 2 (the same constant the uniform family's
        // aligned batching claims), Batch reads 2μ+1 = 3. These are the
        // values the `conform uniform` cross-check tables enforce.
        assert_eq!(SchedulerKind::BatchPlus.ratio_bound(1.0), Some(2.0));
        assert_eq!(SchedulerKind::Batch.ratio_bound(1.0), Some(3.0));
        assert_eq!(SchedulerKind::UnitAligned.ratio_bound(1.0), Some(2.0));
    }

    fn uniform_instance() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 4.0, 2.0),
            Job::adp(1.0, 1.0, 2.0),
            Job::adp(3.0, 9.0, 2.0),
        ])
    }

    #[test]
    fn instance_ratio_bounds() {
        let uni = uniform_instance(); // λ = max laxity 6 / p 2 = 3
        assert_eq!(SchedulerKind::UnitAligned.ratio_bound_on(&uni), Some(2.0));
        assert_eq!(SchedulerKind::UnitGreedy.ratio_bound_on(&uni), Some(4.0));
        assert_eq!(SchedulerKind::UnitEndfit.ratio_bound_on(&uni), Some(4.0));
        // Default path: μ of this instance is 1, so Batch+ reads 2.
        assert_eq!(SchedulerKind::BatchPlus.ratio_bound_on(&uni), Some(2.0));

        let mixed = small_instance();
        assert_eq!(SchedulerKind::UnitAligned.ratio_bound_on(&mixed), None);
        assert_eq!(SchedulerKind::UnitGreedy.ratio_bound_on(&mixed), None);
        assert_eq!(SchedulerKind::UnitEndfit.ratio_bound_on(&mixed), None);
        assert!(SchedulerKind::BatchPlus.ratio_bound_on(&mixed).is_some());

        assert!(SchedulerKind::UnitGreedy.has_ratio_bound());
        assert!(SchedulerKind::UnitEndfit.has_ratio_bound());
        assert!(SchedulerKind::UnitAligned.has_ratio_bound());
        assert!(!SchedulerKind::Eager.has_ratio_bound());
        assert!(!SchedulerKind::Lazy.has_ratio_bound());
    }

    #[test]
    fn short_names_never_collide() {
        // Registry hygiene: `fjs conform all` resolves targets by short
        // name, so a collision would silently shadow a family.
        let kinds = SchedulerKind::registered_set();
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(
                    a.short_name(),
                    b.short_name(),
                    "{} and {} share a short name",
                    a.label(),
                    b.label()
                );
            }
        }
    }

    #[test]
    fn uniform_family_clairvoyance_collapses_bit_identically() {
        // The registry invariant: the uniform family never reads lengths,
        // so both information models produce the same run. Verified by
        // executing each member under both models.
        let inst = uniform_instance();
        for kind in SchedulerKind::uniform_set() {
            assert!(kind.clairvoyance_collapses(), "{}", kind.label());
            assert!(kind.is_uniform_family());
            assert_eq!(kind.information_model(), Clairvoyance::NonClairvoyant);
            assert!(kind.scale_invariant(), "{}", kind.label());
            let nc = run_static(&inst, Clairvoyance::NonClairvoyant, kind.build());
            let cv = run_static(&inst, Clairvoyance::Clairvoyant, kind.build());
            assert_eq!(nc.schedule, cv.schedule, "{}", kind.label());
            assert_eq!(nc.span, cv.span, "{}", kind.label());
        }
        for kind in SchedulerKind::full_set() {
            assert!(!kind.clairvoyance_collapses(), "{}", kind.label());
            assert!(!kind.is_uniform_family(), "{}", kind.label());
        }
    }

    #[test]
    fn scale_invariance_excludes_class_schedulers() {
        assert!(!SchedulerKind::cdb_optimal().scale_invariant());
        assert!(!SchedulerKind::SemiCdb.scale_invariant());
        for kind in SchedulerKind::registered_set() {
            assert!(kind.translation_invariant());
        }
        assert!(SchedulerKind::Batch.scale_invariant());
        assert!(SchedulerKind::profit_optimal().scale_invariant());
    }

    #[test]
    fn clairvoyance_requirements() {
        assert!(!SchedulerKind::Batch.requires_clairvoyance());
        assert!(!SchedulerKind::BatchPlus.requires_clairvoyance());
        assert!(SchedulerKind::profit_optimal().requires_clairvoyance());
        assert!(SchedulerKind::cdb_optimal().requires_clairvoyance());
    }
}
