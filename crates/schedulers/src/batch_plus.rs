//! The **Batch+** scheduler (Section 3.2, Theorem 3.5) and its reusable
//! per-category state machine (shared with Classify-by-Duration Batch+).
//!
//! Batch+ refines Batch: in each iteration it elects a flag job `J` (the
//! pending job with the earliest starting deadline), starts all pending jobs
//! together with the flag at `d(J)`, and — unlike Batch — **also starts
//! every newly arriving job immediately** for as long as the flag job is
//! running. Only when the flag completes does it return to buffering.
//!
//! For Non-Clairvoyant FJS, Batch+ has a *tight* competitive ratio of
//! `μ + 1` (Theorem 3.5; experiment E3 reproduces the Figure 3 tightness
//! instance).

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};

use crate::flag_graph::FlagRecorder;

/// Phase of one Batch+ state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Waiting for a pending job to hit its starting deadline.
    Buffering,
    /// A flag job is running; arrivals start immediately.
    InIteration {
        /// The flag job whose completion ends the iteration.
        flag: JobId,
    },
}

/// The Batch+ iteration logic over a *subset* of jobs, reusable as the
/// per-category engine of Classify-by-Duration Batch+. The state machine
/// only tracks jobs explicitly fed to it, so several instances can coexist
/// on disjoint job classes.
#[derive(Clone, Debug)]
pub struct BatchPlusState {
    mode: Mode,
    /// Pending (buffered) jobs of this class, in arrival order.
    pending: Vec<JobId>,
    flags: Vec<JobId>,
}

impl Default for BatchPlusState {
    fn default() -> Self {
        BatchPlusState {
            mode: Mode::Buffering,
            pending: Vec::new(),
            flags: Vec::new(),
        }
    }
}

impl BatchPlusState {
    /// Fresh state machine (buffering, no pending jobs).
    pub fn new() -> Self {
        BatchPlusState::default()
    }

    /// Flag jobs elected so far, in iteration order.
    pub fn flags(&self) -> &[JobId] {
        &self.flags
    }

    /// Whether an iteration is currently active.
    pub fn in_iteration(&self) -> bool {
        matches!(self.mode, Mode::InIteration { .. })
    }

    /// Handles the arrival of a job belonging to this class.
    pub fn job_arrived(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        match self.mode {
            Mode::Buffering => self.pending.push(id),
            // During the flag's active interval, arrivals start immediately.
            Mode::InIteration { .. } => ctx.start(id),
        }
    }

    /// Handles a pending job of this class hitting its starting deadline.
    pub fn job_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        if matches!(self.mode, Mode::InIteration { .. }) {
            // Under honest operation every job of this class is started at
            // or before iteration start, so a pending job can only hit its
            // deadline mid-iteration if the action layer dropped or rewrote
            // our starts (fault injection). Degrade: start it now instead of
            // opening a nested iteration.
            self.pending.retain(|&j| j != id);
            ctx.start(id);
            return;
        }
        // `id` is the pending job with the earliest deadline → the flag.
        self.flags.push(id);
        self.mode = Mode::InIteration { flag: id };
        for j in self.pending.drain(..) {
            ctx.start(j);
        }
    }

    /// Handles the completion of a job of this class.
    pub fn job_completed(&mut self, id: JobId) {
        if let Mode::InIteration { flag } = self.mode {
            if flag == id {
                self.mode = Mode::Buffering;
            }
        }
    }
}

/// The Batch+ scheduler over the whole job set. Works in both information
/// models (it never looks at processing lengths).
///
/// ```
/// use fjs_core::prelude::*;
/// use fjs_schedulers::BatchPlus;
///
/// let inst = Instance::new(vec![
///     Job::adp(0.0, 5.0, 2.0),
///     Job::adp(1.0, 9.0, 1.0),
/// ]);
/// let out = run_static(&inst, Clairvoyance::NonClairvoyant, BatchPlus::new());
/// assert!(out.is_feasible());
/// // Both jobs start together at the earliest pending deadline (t = 5).
/// assert_eq!(out.span, dur(2.0));
/// ```
#[derive(Clone, Default, Debug)]
pub struct BatchPlus {
    state: BatchPlusState,
}

impl BatchPlus {
    /// Creates a Batch+ scheduler.
    pub fn new() -> Self {
        BatchPlus::default()
    }
}

impl FlagRecorder for BatchPlus {
    fn flag_jobs(&self) -> Vec<JobId> {
        self.state.flags().to_vec()
    }
}

impl OnlineScheduler for BatchPlus {
    fn name(&self) -> String {
        "Batch+".into()
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        self.state.job_arrived(job.id, ctx);
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        self.state.job_deadline(id, ctx);
    }

    fn on_completion(&mut self, id: JobId, _length: fjs_core::time::Dur, _ctx: &mut Ctx<'_>) {
        self.state.job_completed(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    #[test]
    fn arrivals_start_immediately_during_iteration() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 10.0), // flag of iteration 1
            Job::adp(1.0, 20.0, 1.0), // arrives mid-iteration → starts at 1
            Job::adp(3.0, 50.0, 2.0), // arrives mid-iteration → starts at 3
        ]);
        let mut sched = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(1.0)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(3.0)));
        assert_eq!(out.span, dur(10.0));
        assert_eq!(sched.flag_jobs(), &[JobId(0)]);
    }

    #[test]
    fn buffering_resumes_when_flag_completes() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 2.0),  // flag, completes at 2
            Job::adp(2.0, 30.0, 1.0), // arrives exactly at flag completion → buffered
        ]);
        let mut sched = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(
            out.schedule.start(JobId(1)),
            Some(t(30.0)),
            "buffered job waits for its own deadline to flag iteration 2"
        );
        assert_eq!(sched.flag_jobs(), &[JobId(0), JobId(1)]);
    }

    #[test]
    fn flag_completion_vs_longer_jobs() {
        // A non-flag job outlives the flag; buffering must resume at the
        // *flag's* completion regardless.
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 1.0),  // flag (earliest deadline), runs [1,2)
            Job::adp(0.0, 5.0, 10.0), // started with flag, runs [1,11)
            Job::adp(3.0, 4.0, 1.0),  // arrives during [2,?]: buffered (flag done at 2)
        ]);
        let mut sched = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(1.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(1.0)));
        assert_eq!(
            out.schedule.start(JobId(2)),
            Some(t(4.0)),
            "J2 arrived after the flag completed, so it buffers to its deadline"
        );
        assert_eq!(sched.flag_jobs(), &[JobId(0), JobId(2)]);
        assert_eq!(out.span, dur(10.0));
    }

    #[test]
    fn pending_jobs_all_start_with_flag() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 5.0, 1.0),
            Job::adp(1.0, 9.0, 1.0),
            Job::adp(2.0, 7.0, 1.0),
        ]);
        let mut sched = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut sched);
        assert!(out.is_feasible());
        for i in 0..3 {
            assert_eq!(out.schedule.start(JobId(i)), Some(t(5.0)));
        }
        assert_eq!(out.span, dur(1.0));
    }

    #[test]
    fn state_machine_invariants() {
        let s = BatchPlusState::new();
        assert!(!s.in_iteration());
        assert!(s.flags().is_empty());
    }
}
