//! **Semi-clairvoyant CDB** (extension): Classify-by-Duration Batch+ run
//! with only the geometric **length class** `⌈log₂ p⌉` revealed at arrival
//! ([`fjs_core::sim::Clairvoyance::ClassOnly`]).
//!
//! Observation: CDB never reads `p(J)` itself — only the category it falls
//! in. So the full clairvoyance of Section 4 is more information than CDB
//! needs: `O(log μ)` bits (the class index) suffice to run CDB with
//! `α = 2`, retaining a constant competitive ratio
//! `3·2 + 4 + 2/(2−1) = 12` (Theorem 4.4 at `α = 2`). The differential
//! test in this module pins the equivalence: `SemiCdb` under `ClassOnly`
//! produces bit-identical schedules to `ClassifyByDuration::new(2.0, 1.0)`
//! under full clairvoyance.

use std::collections::BTreeMap;

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};
use fjs_core::time::Dur;

use crate::batch_plus::BatchPlusState;
use crate::flag_graph::FlagRecorder;

/// CDB driven purely by revealed length classes (base-2 geometric).
/// Runs under [`fjs_core::sim::Clairvoyance::ClassOnly`] — or any stronger
/// model, since classes are also revealed there.
#[derive(Clone, Debug, Default)]
pub struct SemiCdb {
    categories: BTreeMap<i64, BatchPlusState>,
    job_category: Vec<i64>,
}

impl SemiCdb {
    /// Creates a semi-clairvoyant CDB scheduler.
    pub fn new() -> Self {
        SemiCdb::default()
    }

    /// Number of non-empty categories seen so far.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    fn record_category(&mut self, id: JobId, cat: i64) {
        let idx = id.index();
        if self.job_category.len() <= idx {
            self.job_category.resize(idx + 1, i64::MIN);
        }
        self.job_category[idx] = cat;
    }
}

impl FlagRecorder for SemiCdb {
    fn flag_jobs(&self) -> Vec<JobId> {
        let mut all: Vec<JobId> = self
            .categories
            .values()
            .flat_map(|s| s.flags().iter().copied())
            .collect();
        all.sort();
        all
    }
}

impl OnlineScheduler for SemiCdb {
    fn name(&self) -> String {
        "SemiCDB(α=2)".into()
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        let cat = job.length_class.expect(
            "SemiCdb needs at least length classes: run it with \
             Clairvoyance::ClassOnly or Clairvoyance::Clairvoyant",
        );
        self.record_category(job.id, cat);
        self.categories
            .entry(cat)
            .or_default()
            .job_arrived(job.id, ctx);
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        let cat = self.job_category[id.index()];
        self.categories
            .entry(cat)
            .or_default()
            .job_deadline(id, ctx);
    }

    fn on_completion(&mut self, id: JobId, _length: Dur, _ctx: &mut Ctx<'_>) {
        let cat = self.job_category[id.index()];
        if let Some(state) = self.categories.get_mut(&cat) {
            state.job_completed(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdb::ClassifyByDuration;
    use fjs_core::prelude::*;

    fn workload(seed: u64, n: usize) -> Instance {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let jobs: Vec<Job> = (0..n)
            .map(|_| {
                let a = (next() % 300) as f64 / 10.0;
                let lax = (next() % 200) as f64 / 10.0;
                let p = 0.5 + (next() % 100) as f64 / 10.0;
                Job::adp(a, a + lax, p)
            })
            .collect();
        Instance::new(jobs)
    }

    #[test]
    fn class_only_runs_feasibly() {
        let inst = workload(1, 80);
        let out = run_static(&inst, Clairvoyance::ClassOnly, SemiCdb::new());
        assert!(out.is_feasible());
        assert!(out.schedule.validate(&out.instance).is_ok());
    }

    #[test]
    fn equivalent_to_full_cdb_at_alpha_two() {
        // The headline differential: classes are ALL the information CDB
        // consumes, so SemiCdb (ClassOnly) ≡ CDB(α=2, b=1) (Clairvoyant).
        for seed in 0..20u64 {
            let inst = workload(seed, 120);
            let semi = run_static(&inst, Clairvoyance::ClassOnly, SemiCdb::new());
            let full = run_static(
                &inst,
                Clairvoyance::Clairvoyant,
                ClassifyByDuration::new(2.0, 1.0),
            );
            assert!(semi.is_feasible() && full.is_feasible());
            assert_eq!(
                semi.schedule, full.schedule,
                "seed {seed}: schedules diverge"
            );
            assert_eq!(semi.span, full.span);
        }
    }

    #[test]
    fn works_under_full_clairvoyance_too() {
        let inst = workload(3, 60);
        let a = run_static(&inst, Clairvoyance::ClassOnly, SemiCdb::new());
        let b = run_static(&inst, Clairvoyance::Clairvoyant, SemiCdb::new());
        assert_eq!(a.schedule, b.schedule, "extra information is ignored");
    }

    #[test]
    #[should_panic(expected = "length classes")]
    fn non_clairvoyant_run_panics() {
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 1.0)]);
        let _ = run_static(&inst, Clairvoyance::NonClairvoyant, SemiCdb::new());
    }
}
