//! The **Profit** scheduler (Section 4.3, Theorem 4.11).
//!
//! Clairvoyant. Proceeds in (possibly overlapping) iterations. When a
//! pending job hits its starting deadline, the scheduler elects a *flag
//! job* `J_f` (ties at the same deadline broken towards the longest
//! processing length) and starts it at `d(J_f)`. A job `J` is *profitable*
//! to `J_f` — and is started in `J_f`'s iteration — when at least `1/k` of
//! its active interval is guaranteed to overlap `J_f`'s:
//!
//! * pending at `d(J_f)` with `p(J) ≤ k·p(J_f)` → started at `d(J_f)`;
//! * arriving during `J_f`'s active interval with
//!   `p(J) ≤ k·(d(J_f)+p(J_f) − a(J))` → started immediately at `a(J)`.
//!
//! Non-profitable pending jobs simply wait for their own deadlines, which
//! open new iterations; hence several flag jobs may run concurrently.
//!
//! Theorem 4.11: Profit is `(2k + 2 + 1/(k−1))`-competitive for every
//! `k > 1`, minimized at `k = 1 + √2/2 ≈ 1.7071` where the ratio is
//! `4 + 2√2 ≈ 6.828`.

use fjs_core::job::JobId;
use fjs_core::sim::{Arrival, Ctx, OnlineScheduler};
use fjs_core::time::{Dur, Time};

use crate::flag_graph::FlagRecorder;

/// The optimal profitability parameter `k* = 1 + √2/2` (Theorem 4.11).
pub const OPTIMAL_K: f64 = 1.0 + std::f64::consts::FRAC_1_SQRT_2;

/// The proved competitive ratio of Profit as a function of `k`.
pub fn profit_bound(k: f64) -> f64 {
    assert!(k > 1.0, "Profit requires k > 1");
    2.0 * k + 2.0 + 1.0 / (k - 1.0)
}

/// The Profit scheduler. Requires a clairvoyant run (it reads `p(J)` at
/// arrival) and panics otherwise.
///
/// ```
/// use fjs_core::prelude::*;
/// use fjs_schedulers::Profit;
///
/// let inst = Instance::new(vec![
///     Job::adp(0.0, 3.0, 2.0),   // flags at t = 3
///     Job::adp(1.0, 20.0, 2.5),  // profitable (2.5 ≤ k·2) → joins the flag
/// ]);
/// let out = run_static(&inst, Clairvoyance::Clairvoyant, Profit::optimal());
/// assert!(out.is_feasible());
/// assert_eq!(out.span, dur(2.5)); // both run inside [3, 5.5)
/// ```
#[derive(Clone, Debug)]
pub struct Profit {
    k: f64,
    /// Running flag jobs as `(id, completion time d+p)`.
    active: Vec<(JobId, Time)>,
    flags: Vec<JobId>,
}

impl Profit {
    /// Creates a Profit scheduler with profitability parameter `k > 1`.
    ///
    /// # Panics
    /// Panics if `k <= 1` (the admission rule and the analysis both require
    /// `k > 1`).
    pub fn new(k: f64) -> Self {
        assert!(k > 1.0, "Profit requires k > 1, got {k}");
        Profit {
            k,
            active: Vec::new(),
            flags: Vec::new(),
        }
    }

    /// Profit with the analytically optimal `k = 1 + √2/2`.
    pub fn optimal() -> Self {
        Profit::new(OPTIMAL_K)
    }

    /// The profitability parameter.
    pub fn k(&self) -> f64 {
        self.k
    }

    fn length_of(&self, ctx: &Ctx<'_>, id: JobId) -> Dur {
        ctx.length_of(id)
            .expect("Profit is a clairvoyant scheduler: run it with Clairvoyance::Clairvoyant")
    }
}

impl FlagRecorder for Profit {
    fn flag_jobs(&self) -> Vec<JobId> {
        self.flags.clone()
    }
}

impl OnlineScheduler for Profit {
    fn name(&self) -> String {
        format!("Profit(k={:.4})", self.k)
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        let p = job
            .length
            .expect("Profit is a clairvoyant scheduler: run it with Clairvoyance::Clairvoyant");
        // Started immediately iff profitable to some running flag job:
        // p(J) ≤ k · (d(J_f)+p(J_f) − a(J)).
        let profitable = self
            .active
            .iter()
            .any(|&(_, end)| p.get() <= self.k * (end - job.arrival).get());
        if profitable {
            ctx.start(job.id);
        }
        // Otherwise pend until some deadline (possibly its own) fires.
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Elect the flag among all pending jobs at this deadline: the one
        // with the longest processing length (paper's tie-break).
        let pending: Vec<JobId> = ctx.pending().collect();
        let flag = pending
            .iter()
            .copied()
            .filter(|&j| ctx.deadline_of(j) == now)
            .max_by(|&x, &y| {
                self.length_of(ctx, x)
                    .cmp(&self.length_of(ctx, y))
                    .then(y.cmp(&x)) // prefer smaller id on equal length
            })
            .unwrap_or(id);
        let p_flag = self.length_of(ctx, flag);
        self.flags.push(flag);
        self.active.push((flag, now + p_flag));
        ctx.start(flag);
        // Start every pending job profitable to the new flag:
        // p(J) ≤ k · p(J_f).
        for j in pending {
            if j == flag {
                continue;
            }
            if self.length_of(ctx, j).get() <= self.k * p_flag.get() {
                ctx.start(j);
            }
        }
    }

    fn on_completion(&mut self, id: JobId, _length: Dur, _ctx: &mut Ctx<'_>) {
        self.active.retain(|&(f, _)| f != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;

    fn run_profit(inst: &Instance, k: f64) -> (SimOutcome, Vec<JobId>) {
        let mut sched = Profit::new(k);
        let out = run_static(inst, Clairvoyance::Clairvoyant, &mut sched);
        assert!(out.is_feasible());
        let flags = sched.flag_jobs();
        (out, flags)
    }

    #[test]
    fn bound_curve_minimum_at_optimal_k() {
        let at_opt = profit_bound(OPTIMAL_K);
        assert!((at_opt - (4.0 + 2.0 * 2.0_f64.sqrt())).abs() < 1e-12);
        for k in [1.1, 1.3, 1.5, 1.9, 2.5, 3.0] {
            assert!(profit_bound(k) >= at_opt - 1e-12, "k={k} beats the optimum");
        }
    }

    #[test]
    fn pending_profitable_jobs_start_with_flag() {
        // J0 deadline 5 (flag, p=2). J1 pending with p=3 ≤ k·2 for k=1.7.
        let inst = Instance::new(vec![Job::adp(0.0, 5.0, 2.0), Job::adp(1.0, 30.0, 3.0)]);
        let (out, flags) = run_profit(&inst, OPTIMAL_K);
        assert_eq!(out.schedule.start(JobId(0)), Some(t(5.0)));
        assert_eq!(
            out.schedule.start(JobId(1)),
            Some(t(5.0)),
            "profitable → same iteration"
        );
        assert_eq!(flags, vec![JobId(0)]);
    }

    #[test]
    fn unprofitable_pending_job_waits_for_its_own_deadline() {
        // p(J1)=10 > k·p(J0)=k·1 → J1 not profitable; it flags its own
        // iteration at d=30.
        let inst = Instance::new(vec![Job::adp(0.0, 5.0, 1.0), Job::adp(1.0, 30.0, 10.0)]);
        let (out, flags) = run_profit(&inst, OPTIMAL_K);
        assert_eq!(out.schedule.start(JobId(0)), Some(t(5.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(30.0)));
        assert_eq!(flags, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn arrival_during_flag_run_starts_if_profitable() {
        // Flag J0 runs [0, 10). J1 arrives at 2 with p=5 ≤ k·(10−2).
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 10.0), Job::adp(2.0, 50.0, 5.0)]);
        let (out, flags) = run_profit(&inst, 1.5);
        assert_eq!(out.schedule.start(JobId(1)), Some(t(2.0)));
        assert_eq!(flags, vec![JobId(0)]);
    }

    #[test]
    fn arrival_near_flag_end_not_profitable() {
        // Flag J0 runs [0, 10). J1 arrives at 9 with p=5 > k·(10−9)=1.5.
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 10.0), Job::adp(9.0, 50.0, 5.0)]);
        let (out, flags) = run_profit(&inst, 1.5);
        assert_eq!(
            out.schedule.start(JobId(1)),
            Some(t(50.0)),
            "waits, flags its own iteration"
        );
        assert_eq!(flags, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn same_deadline_tie_breaks_to_longest_job() {
        // Both hit deadline 4; p=7 should be the flag, p=2 profitable to it.
        let inst = Instance::new(vec![Job::adp(0.0, 4.0, 2.0), Job::adp(1.0, 4.0, 7.0)]);
        let (out, flags) = run_profit(&inst, 1.2);
        assert_eq!(flags, vec![JobId(1)], "longest job is the flag");
        assert_eq!(out.schedule.start(JobId(0)), Some(t(4.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(4.0)));
    }

    #[test]
    fn concurrent_flags_possible() {
        // J0 flags at 0 with p=100. J1 (p=300, not profitable) flags at 10
        // while J0 still runs.
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 100.0), Job::adp(0.0, 10.0, 300.0)]);
        let (out, flags) = run_profit(&inst, 1.5);
        assert_eq!(flags, vec![JobId(0), JobId(1)]);
        assert_eq!(out.schedule.start(JobId(1)), Some(t(10.0)));
        // Both flags ran concurrently during [10, 100).
        assert_eq!(out.span, dur(310.0));
    }

    #[test]
    #[should_panic(expected = "clairvoyant")]
    fn non_clairvoyant_run_panics() {
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 1.0)]);
        let _ = run_static(&inst, Clairvoyance::NonClairvoyant, Profit::optimal());
    }

    #[test]
    #[should_panic(expected = "k > 1")]
    fn k_must_exceed_one() {
        let _ = Profit::new(1.0);
    }
}
