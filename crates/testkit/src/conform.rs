//! The conformance loop: seeded deck cases fanned out through
//! [`fjs_analysis::parallel_map`], every applicable oracle checked per
//! target, and each distinct failure minimized by the shrinker.

use crate::oracles::{self, OracleKind, OracleViolation};
use crate::shrink::{shrink, ShrinkStats, DEFAULT_SHRINK_BUDGET};
use crate::target::Target;
use fjs_analysis::parallel_map;
use fjs_core::job::Instance;
use fjs_prng::check::case_seed;
use fjs_workloads::{conformance_deck, Family};

/// Configuration for one conformance run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConformConfig {
    /// Number of cases; case `i` draws deck member `i % deck.len()` with
    /// seed `case_seed(base_seed, i)`.
    pub cases: usize,
    /// Base seed; the whole run is a pure function of `(targets, config)`.
    pub base_seed: u64,
    /// Quick mode (CI): only deck members with at most 8 jobs, so every
    /// case stays microseconds-cheap.
    pub quick: bool,
    /// Shrinker evaluation budget per distinct failure.
    pub shrink_budget: usize,
}

impl Default for ConformConfig {
    fn default() -> Self {
        ConformConfig {
            cases: 64,
            base_seed: 1,
            quick: false,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
        }
    }
}

/// One distinct `(target, oracle)` failure, minimized.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failing target.
    pub target: Target,
    /// The violated oracle.
    pub oracle: OracleKind,
    /// Diagnosis from the first occurrence.
    pub detail: String,
    /// Deck family label of the first occurrence.
    pub family: String,
    /// Case seed of the first occurrence.
    pub seed: u64,
    /// How many cases hit this `(target, oracle)` pair.
    pub occurrences: usize,
    /// The original (un-shrunk) failing instance.
    pub instance: Instance,
    /// The minimized instance (still fails the same oracle).
    pub shrunk: Instance,
    /// Shrinker effort spent.
    pub shrink_stats: ShrinkStats,
}

/// The result of a conformance run.
#[derive(Clone, Debug, Default)]
pub struct ConformReport {
    /// Cases executed.
    pub cases: usize,
    /// Total oracle checks executed across all cases and targets.
    pub checks: usize,
    /// Distinct minimized failures (empty for conforming schedulers).
    pub failures: Vec<Failure>,
}

impl ConformReport {
    /// `true` when no oracle failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

struct RawFailure {
    target_index: usize,
    violation: OracleViolation,
    family: String,
    seed: u64,
    instance: Instance,
}

/// Runs the conformance suite for `targets`.
///
/// Deterministic: the report (including shrunk instances) is a pure
/// function of `(targets, config)` — `parallel_map` preserves input order
/// and every oracle and the shrinker are deterministic.
pub fn run_conformance(targets: &[Target], config: &ConformConfig) -> ConformReport {
    let mut deck: Vec<Family> = conformance_deck();
    if config.quick {
        deck.retain(|f| f.n() <= 8);
    }
    let ratio_possible = targets
        .iter()
        .any(|t| oracles::row(t).contains(&OracleKind::RatioBound));

    let cases: Vec<(usize, Family, u64)> = (0..config.cases)
        .map(|i| (i, deck[i % deck.len()], case_seed(config.base_seed, i)))
        .collect();

    let per_case: Vec<(usize, Vec<RawFailure>)> = parallel_map(&cases, |&(_, family, seed)| {
        let inst = family.generate(seed);
        // The exact optimum is per-instance, not per-target: compute it
        // once and share it across every ratio-bound check.
        let opt = if ratio_possible { oracles::exact_opt(&inst) } else { None };
        let mut checks = 0;
        let mut raw = Vec::new();
        for (target_index, target) in targets.iter().enumerate() {
            let (n, violations) = oracles::check_all(target, &inst, opt);
            checks += n;
            for violation in violations {
                raw.push(RawFailure {
                    target_index,
                    violation,
                    family: family.label(),
                    seed,
                    instance: inst.clone(),
                });
            }
        }
        (checks, raw)
    });

    let mut report = ConformReport { cases: config.cases, ..ConformReport::default() };
    let mut failures: Vec<Failure> = Vec::new();
    for (checks, raw) in per_case {
        report.checks += checks;
        for rf in raw {
            let target = targets[rf.target_index];
            if let Some(existing) = failures
                .iter_mut()
                .find(|f| f.target == target && f.oracle == rf.violation.oracle)
            {
                existing.occurrences += 1;
                continue;
            }
            failures.push(Failure {
                target,
                oracle: rf.violation.oracle,
                detail: rf.violation.detail,
                family: rf.family,
                seed: rf.seed,
                occurrences: 1,
                instance: rf.instance,
                shrunk: Instance::empty(),
                shrink_stats: ShrinkStats::default(),
            });
        }
    }

    // Minimize each distinct failure, preserving the failing oracle.
    for failure in &mut failures {
        let target = failure.target;
        let oracle = failure.oracle;
        let (shrunk, stats) = shrink(&failure.instance, config.shrink_budget, |cand| {
            oracles::still_fails(&target, oracle, cand)
        });
        failure.shrunk = shrunk;
        failure.shrink_stats = stats;
    }

    report.failures = failures;
    report
}

/// All real registered schedulers as conformance targets.
pub fn all_targets() -> Vec<Target> {
    fjs_schedulers::SchedulerKind::registered_set()
        .into_iter()
        .map(Target::Kind)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(cases: usize) -> ConformConfig {
        ConformConfig { cases, base_seed: 1, quick: true, ..ConformConfig::default() }
    }

    #[test]
    fn real_schedulers_conform() {
        let report = run_conformance(&all_targets(), &quick_config(24));
        let details: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("{} / {}: {}", f.target.name(), f.oracle.id(), f.detail))
            .collect();
        assert!(report.is_clean(), "conformance failures:\n{}", details.join("\n"));
        assert_eq!(report.cases, 24);
        assert!(report.checks > 24 * all_targets().len(), "several oracles per target-case");
    }

    #[test]
    fn chaos_is_caught_and_shrunk_small() {
        let report = run_conformance(&[Target::default_chaos()], &quick_config(16));
        assert!(!report.is_clean(), "the harness must catch injected chaos");
        let f = &report.failures[0];
        assert_eq!(f.oracle, OracleKind::Window);
        assert!(f.shrunk.len() <= 6, "shrunk to {} jobs: {:?}", f.shrunk.len(), f.shrunk);
        assert!(f.shrink_stats.evaluations > 0);
        assert!(
            oracles::still_fails(&f.target, f.oracle, &f.shrunk),
            "the minimized instance must preserve the failure"
        );
    }

    #[test]
    fn reports_are_bit_stable() {
        let a = run_conformance(&[Target::default_chaos()], &quick_config(8));
        let b = run_conformance(&[Target::default_chaos()], &quick_config(8));
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.failures.len(), b.failures.len());
        for (fa, fb) in a.failures.iter().zip(&b.failures) {
            assert_eq!(fa.shrunk, fb.shrunk);
            assert_eq!(fa.seed, fb.seed);
            assert_eq!(fa.occurrences, fb.occurrences);
        }
    }
}
