//! The conformance loop: seeded deck cases fanned out through the
//! work-stealing [`fjs_analysis::sharded_map`] executor, every applicable
//! oracle checked per target, and each distinct failure minimized by the
//! shrinker. The report is bit-identical for every shard count.

use crate::oracles::{self, OracleKind, OracleViolation};
use crate::shrink::{shrink, ShrinkStats, DEFAULT_SHRINK_BUDGET};
use crate::target::Target;
use fjs_analysis::{sharded_map, ShardPlan};
use fjs_core::job::Instance;
use fjs_core::supervise::{Cell, CellResult, Journal};
use fjs_prng::check::case_seed;
use fjs_workloads::{conformance_deck, uniform_conformance_deck, Family};
use std::sync::Mutex;

/// Which case deck a conformance run draws from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeckKind {
    /// The canonical mixed-length deck ([`conformance_deck`]).
    #[default]
    Main,
    /// The uniform-jobs deck ([`uniform_conformance_deck`]): lengths all
    /// equal, arming the uniform family's `2` / `1 + λ` ratio bounds.
    Uniform,
}

impl DeckKind {
    /// Materializes the deck.
    pub fn deck(&self) -> Vec<Family> {
        match self {
            DeckKind::Main => conformance_deck(),
            DeckKind::Uniform => uniform_conformance_deck(),
        }
    }

    /// Stable name (CLI `--deck`, corpus notes).
    pub fn name(&self) -> &'static str {
        match self {
            DeckKind::Main => "main",
            DeckKind::Uniform => "uniform",
        }
    }
}

/// Configuration for one conformance run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConformConfig {
    /// Number of cases; case `i` draws deck member `i % deck.len()` with
    /// seed `case_seed(base_seed, i)`.
    pub cases: usize,
    /// The case deck.
    pub deck: DeckKind,
    /// Base seed; the whole run is a pure function of `(targets, config)`.
    pub base_seed: u64,
    /// Quick mode (CI): only deck members with at most 8 jobs, so every
    /// case stays microseconds-cheap.
    pub quick: bool,
    /// Shrinker evaluation budget per distinct failure.
    pub shrink_budget: usize,
    /// Worker shards for the case fan-out: `0` = one per core (the
    /// default), `1` = serial on the calling thread. Any value yields the
    /// same report bit for bit.
    pub shards: usize,
}

impl Default for ConformConfig {
    fn default() -> Self {
        ConformConfig {
            cases: 64,
            deck: DeckKind::Main,
            base_seed: 1,
            quick: false,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            shards: 0,
        }
    }
}

/// One distinct `(target, oracle)` failure, minimized.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failing target.
    pub target: Target,
    /// The violated oracle.
    pub oracle: OracleKind,
    /// Diagnosis from the first occurrence.
    pub detail: String,
    /// Deck family label of the first occurrence.
    pub family: String,
    /// Case seed of the first occurrence.
    pub seed: u64,
    /// How many cases hit this `(target, oracle)` pair.
    pub occurrences: usize,
    /// The original (un-shrunk) failing instance.
    pub instance: Instance,
    /// The minimized instance (still fails the same oracle).
    pub shrunk: Instance,
    /// Shrinker effort spent.
    pub shrink_stats: ShrinkStats,
}

/// The result of a conformance run.
#[derive(Clone, Debug, Default)]
pub struct ConformReport {
    /// Cases executed.
    pub cases: usize,
    /// Total oracle checks executed across all cases and targets.
    pub checks: usize,
    /// `(target, case)` cells skipped because a resume journal already
    /// recorded them as completed.
    pub skipped: usize,
    /// Distinct minimized failures (empty for conforming schedulers).
    pub failures: Vec<Failure>,
}

impl ConformReport {
    /// `true` when no oracle failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

struct RawFailure {
    target_index: usize,
    violation: OracleViolation,
    family: String,
    seed: u64,
    instance: Instance,
}

/// Side-channels for a supervised conformance run. The default hooks do
/// nothing, reproducing the plain [`run_conformance`] behaviour.
#[derive(Default)]
pub struct ConformHooks<'a> {
    /// Checkpoint journal: `(target, family, seed)` cells it already
    /// records are skipped (counted in [`ConformReport::skipped`]), and
    /// every newly finished cell is recorded — the `--resume` machinery.
    pub journal: Option<&'a Mutex<Journal>>,
    /// Called once per distinct failure *immediately after it is shrunk*,
    /// so counterexamples reach disk even if the sweep is later killed.
    pub on_failure: Option<&'a mut dyn FnMut(&Failure)>,
}

/// Runs the conformance suite for `targets`.
///
/// Deterministic: the report (including shrunk instances) is a pure
/// function of `(targets, config)` — `sharded_map` merges results back
/// into input order regardless of the shard count or which worker claimed
/// which case, and every oracle and the shrinker are deterministic.
pub fn run_conformance(targets: &[Target], config: &ConformConfig) -> ConformReport {
    run_conformance_with(targets, config, ConformHooks::default())
}

/// [`run_conformance`] with resume/flush [`ConformHooks`].
///
/// With a journal, the report covers only the cells run *this* time
/// (journalled cells are skipped), but the journal itself converges to the
/// same sorted byte content as an uninterrupted run — which is what
/// `--resume` needs.
pub fn run_conformance_with(
    targets: &[Target],
    config: &ConformConfig,
    mut hooks: ConformHooks<'_>,
) -> ConformReport {
    let mut deck: Vec<Family> = config.deck.deck();
    if config.quick {
        deck.retain(|f| f.n() <= 8);
    }
    let ratio_possible = targets
        .iter()
        .any(|t| oracles::row(t).contains(&OracleKind::RatioBound));

    let cases: Vec<(usize, Family, u64)> = (0..config.cases)
        .map(|i| (i, deck[i % deck.len()], case_seed(config.base_seed, i)))
        .collect();

    let journal = hooks.journal;
    let plan = ShardPlan::with_shards(config.shards).seeded(config.base_seed);
    let per_case: Vec<(usize, usize, Vec<RawFailure>)> =
        sharded_map(&cases, plan, |&(_, family, seed)| {
            // Resolve the whole case's skip set up front (one lock), so an
            // instance is never generated for fully-journalled cases.
            let todo: Vec<(usize, &Target)> = match journal {
                None => targets.iter().enumerate().collect(),
                Some(j) => {
                    let j = j.lock().unwrap_or_else(|e| e.into_inner());
                    targets
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            !j.contains(&Cell {
                                target: t.name(),
                                family: family.label(),
                                seed,
                            })
                        })
                        .collect()
                }
            };
            let skipped = targets.len() - todo.len();
            if todo.is_empty() {
                return (0, skipped, Vec::new());
            }
            let inst = family.generate(seed);
            // The exact optimum is per-instance, not per-target: compute it
            // once and share it across every ratio-bound check.
            let opt = if ratio_possible {
                oracles::exact_opt(&inst)
            } else {
                None
            };
            let mut checks = 0;
            let mut raw = Vec::new();
            for (target_index, target) in todo {
                let (n, violations) = oracles::check_all(target, &inst, opt);
                checks += n;
                let clean = violations.is_empty();
                for violation in violations {
                    raw.push(RawFailure {
                        target_index,
                        violation,
                        family: family.label(),
                        seed,
                        instance: inst.clone(),
                    });
                }
                if let Some(j) = journal {
                    let mut j = j.lock().unwrap_or_else(|e| e.into_inner());
                    // Journal IO failures must not abort the sweep; the
                    // worst case is redoing this cell after a resume.
                    let _ = j.record(CellResult {
                        cell: Cell {
                            target: target.name(),
                            family: family.label(),
                            seed,
                        },
                        verdict: if clean {
                            "clean".into()
                        } else {
                            "failed".into()
                        },
                        span: 0.0,
                        events: 0,
                        retries: 0,
                    });
                }
            }
            (checks, skipped, raw)
        });

    let mut report = ConformReport {
        cases: config.cases,
        ..ConformReport::default()
    };
    let mut failures: Vec<Failure> = Vec::new();
    for (checks, skipped, raw) in per_case {
        report.checks += checks;
        report.skipped += skipped;
        for rf in raw {
            let target = targets[rf.target_index];
            if let Some(existing) = failures
                .iter_mut()
                .find(|f| f.target == target && f.oracle == rf.violation.oracle)
            {
                existing.occurrences += 1;
                continue;
            }
            failures.push(Failure {
                target,
                oracle: rf.violation.oracle,
                detail: rf.violation.detail,
                family: rf.family,
                seed: rf.seed,
                occurrences: 1,
                instance: rf.instance,
                shrunk: Instance::empty(),
                shrink_stats: ShrinkStats::default(),
            });
        }
    }

    // Minimize each distinct failure, preserving the failing oracle, and
    // flush it through the hook the moment it is minimized — a later kill
    // must not lose already-shrunk counterexamples.
    for failure in &mut failures {
        let target = failure.target;
        let oracle = failure.oracle;
        let (shrunk, stats) = shrink(&failure.instance, config.shrink_budget, |cand| {
            oracles::still_fails(&target, oracle, cand)
        });
        failure.shrunk = shrunk;
        failure.shrink_stats = stats;
        if let Some(on_failure) = hooks.on_failure.as_mut() {
            on_failure(failure);
        }
    }

    report.failures = failures;
    report
}

/// All real registered schedulers as conformance targets.
pub fn all_targets() -> Vec<Target> {
    fjs_schedulers::SchedulerKind::registered_set()
        .into_iter()
        .map(Target::Kind)
        .collect()
}

/// The targets of a `fjs conform uniform` run: the uniform family itself
/// plus the seed-paper schedulers that remain meaningful at `μ = 1` —
/// cross-checking both theories on the shared regime (Batch+ reads
/// `μ + 1 = 2` there, the same bound UnitAligned claims).
pub fn uniform_targets() -> Vec<Target> {
    use fjs_schedulers::SchedulerKind;
    let mut kinds = SchedulerKind::uniform_set();
    kinds.extend([
        SchedulerKind::Eager,
        SchedulerKind::Lazy,
        SchedulerKind::Batch,
        SchedulerKind::BatchPlus,
        SchedulerKind::Doubler { c: 1.0 },
    ]);
    kinds.into_iter().map(Target::Kind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(cases: usize) -> ConformConfig {
        ConformConfig {
            cases,
            base_seed: 1,
            quick: true,
            ..ConformConfig::default()
        }
    }

    #[test]
    fn real_schedulers_conform() {
        let report = run_conformance(&all_targets(), &quick_config(24));
        let details: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("{} / {}: {}", f.target.name(), f.oracle.id(), f.detail))
            .collect();
        assert!(
            report.is_clean(),
            "conformance failures:\n{}",
            details.join("\n")
        );
        assert_eq!(report.cases, 24);
        assert!(
            report.checks > 24 * all_targets().len(),
            "several oracles per target-case"
        );
    }

    #[test]
    fn uniform_deck_conformance_is_clean() {
        let config = ConformConfig {
            deck: DeckKind::Uniform,
            ..quick_config(24)
        };
        let report = run_conformance(&uniform_targets(), &config);
        let details: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("{} / {}: {}", f.target.name(), f.oracle.id(), f.detail))
            .collect();
        assert!(
            report.is_clean(),
            "uniform conformance failures:\n{}",
            details.join("\n")
        );
        assert!(report.checks > 24 * uniform_targets().len());
    }

    #[test]
    fn uniform_chaos_is_caught_and_shrunk_uniform() {
        // Self-test on the uniform deck: an injected bug in a uniform-family
        // scheduler must be caught, and its minimized counterexample must
        // still be a uniform-jobs instance.
        let target = Target::from_name("chaos:drop-starts:ualign").expect("parseable");
        let config = ConformConfig {
            deck: DeckKind::Uniform,
            ..quick_config(16)
        };
        let report = run_conformance(&[target], &config);
        assert!(!report.is_clean(), "harness must catch chaos on ualign");
        for f in &report.failures {
            assert!(
                f.shrunk.is_uniform(),
                "shrunk counterexample went mixed: {:?}",
                f.shrunk
            );
            assert!(oracles::still_fails(&f.target, f.oracle, &f.shrunk));
        }
    }

    #[test]
    fn chaos_is_caught_and_shrunk_small() {
        let report = run_conformance(&[Target::default_chaos()], &quick_config(16));
        assert!(!report.is_clean(), "the harness must catch injected chaos");
        let f = &report.failures[0];
        assert_eq!(f.oracle, OracleKind::Window);
        assert!(
            f.shrunk.len() <= 6,
            "shrunk to {} jobs: {:?}",
            f.shrunk.len(),
            f.shrunk
        );
        assert!(f.shrink_stats.evaluations > 0);
        assert!(
            oracles::still_fails(&f.target, f.oracle, &f.shrunk),
            "the minimized instance must preserve the failure"
        );
    }

    #[test]
    fn journal_hook_skips_completed_cells() {
        let mut path = std::env::temp_dir();
        path.push(format!("fjs-conform-journal-{}", std::process::id()));
        let targets = [Target::Kind(fjs_schedulers::SchedulerKind::Batch)];
        let config = quick_config(6);

        let journal = Mutex::new(Journal::create(&path).unwrap());
        let first = run_conformance_with(
            &targets,
            &config,
            ConformHooks {
                journal: Some(&journal),
                ..ConformHooks::default()
            },
        );
        assert_eq!(first.skipped, 0);
        assert!(first.checks > 0);
        assert_eq!(
            journal.lock().unwrap().len(),
            6,
            "one cell per (target, case)"
        );

        // Resume against the same journal: everything is already done.
        let journal = Mutex::new(Journal::resume(&path).unwrap());
        let second = run_conformance_with(
            &targets,
            &config,
            ConformHooks {
                journal: Some(&journal),
                ..ConformHooks::default()
            },
        );
        assert_eq!(second.skipped, 6);
        assert_eq!(second.checks, 0, "skipped cells run no oracles");
        assert!(second.is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn on_failure_hook_fires_per_shrunk_failure() {
        let mut seen: Vec<String> = Vec::new();
        let mut on_failure = |f: &Failure| {
            assert!(
                oracles::still_fails(&f.target, f.oracle, &f.shrunk),
                "hook must see the already-shrunk failure"
            );
            seen.push(format!("{}/{}", f.target.name(), f.oracle.id()));
        };
        let report = run_conformance_with(
            &[Target::default_chaos()],
            &quick_config(8),
            ConformHooks {
                on_failure: Some(&mut on_failure),
                ..ConformHooks::default()
            },
        );
        assert!(!report.is_clean());
        let expected: Vec<String> = report
            .failures
            .iter()
            .map(|f| format!("{}/{}", f.target.name(), f.oracle.id()))
            .collect();
        assert_eq!(seen, expected, "exactly one hook call per distinct failure");
    }

    #[test]
    fn reports_are_bit_stable() {
        let a = run_conformance(&[Target::default_chaos()], &quick_config(8));
        let b = run_conformance(&[Target::default_chaos()], &quick_config(8));
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.failures.len(), b.failures.len());
        for (fa, fb) in a.failures.iter().zip(&b.failures) {
            assert_eq!(fa.shrunk, fb.shrunk);
            assert_eq!(fa.seed, fb.seed);
            assert_eq!(fa.occurrences, fb.occurrences);
        }
    }
}
