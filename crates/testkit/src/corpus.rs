//! The counterexample **corpus**: minimized violating (or fixed) instances
//! persisted as annotated CSV trace files and replayed by tests.
//!
//! A corpus file is a regular `fjs-workloads` CSV trace whose leading `#!`
//! comment lines carry the conformance metadata — [`parse_trace`] ignores
//! every `#` line, so corpus files remain loadable by any trace consumer:
//!
//! ```text
//! #! conform-corpus: v1
//! #! target: chaos:drop-starts:batch
//! #! oracle: window
//! #! expect: violate
//! #! note: shrunk from int[n=6,mu=2,tight,burst] seed 0xc0ffee
//! # arrival,deadline,length
//! 0,2,1
//! ```
//!
//! `expect: violate` entries are harness self-tests — replay asserts the
//! oracle *still fails* (the harness can still catch the bug). `expect:
//! pass` entries are regression tests for fixed scheduler bugs — replay
//! asserts the oracle *no longer fails*.

use crate::oracles::{still_fails, OracleKind};
use crate::target::Target;
use fjs_core::job::Instance;
use fjs_workloads::{parse_trace, write_trace};
use std::path::{Path, PathBuf};

/// The corpus format version tag written and required by this module.
pub const CORPUS_VERSION: &str = "v1";

/// What replaying an entry must observe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// The oracle passes (regression entry for a fixed bug).
    Pass,
    /// The oracle fails (harness self-test entry).
    Violate,
}

impl Expectation {
    fn id(&self) -> &'static str {
        match self {
            Expectation::Pass => "pass",
            Expectation::Violate => "violate",
        }
    }

    fn from_id(id: &str) -> Option<Expectation> {
        match id {
            "pass" => Some(Expectation::Pass),
            "violate" => Some(Expectation::Violate),
            _ => None,
        }
    }
}

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Target name ([`Target::from_name`] syntax).
    pub target: String,
    /// The oracle the entry exercises.
    pub oracle: OracleKind,
    /// What replay must observe.
    pub expect: Expectation,
    /// Free-form provenance note.
    pub note: String,
    /// The (minimized) instance.
    pub instance: Instance,
}

/// Errors from corpus parsing or replay.
#[derive(Clone, Debug)]
pub enum CorpusError {
    /// Malformed or missing `#!` metadata.
    Meta(String),
    /// The trace body failed to parse.
    Trace(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Meta(m) => write!(f, "corpus metadata: {m}"),
            CorpusError::Trace(m) => write!(f, "corpus trace: {m}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Serializes an entry to the corpus file format.
pub fn render_entry(entry: &CorpusEntry) -> String {
    let mut out = String::new();
    out.push_str(&format!("#! conform-corpus: {CORPUS_VERSION}\n"));
    out.push_str(&format!("#! target: {}\n", entry.target));
    out.push_str(&format!("#! oracle: {}\n", entry.oracle.id()));
    out.push_str(&format!("#! expect: {}\n", entry.expect.id()));
    if !entry.note.is_empty() {
        out.push_str(&format!("#! note: {}\n", entry.note.replace('\n', " ")));
    }
    out.push_str(&write_trace(&entry.instance, None));
    out
}

/// Parses a corpus file.
pub fn parse_entry(text: &str) -> Result<CorpusEntry, CorpusError> {
    let mut version = None;
    let mut target = None;
    let mut oracle = None;
    let mut expect = None;
    let mut note = String::new();
    for line in text.lines() {
        let Some(meta) = line.trim().strip_prefix("#!") else {
            continue;
        };
        let Some((key, value)) = meta.split_once(':') else {
            return Err(CorpusError::Meta(format!("malformed line: {line:?}")));
        };
        let value = value.trim().to_string();
        match key.trim() {
            "conform-corpus" => version = Some(value),
            "target" => target = Some(value),
            "oracle" => {
                oracle =
                    Some(OracleKind::from_id(&value).ok_or_else(|| {
                        CorpusError::Meta(format!("unknown oracle id {value:?}"))
                    })?);
            }
            "expect" => {
                expect =
                    Some(Expectation::from_id(&value).ok_or_else(|| {
                        CorpusError::Meta(format!("unknown expectation {value:?}"))
                    })?);
            }
            "note" => note = value,
            other => return Err(CorpusError::Meta(format!("unknown key {other:?}"))),
        }
    }
    match version {
        Some(v) if v == CORPUS_VERSION => {}
        Some(v) => return Err(CorpusError::Meta(format!("unsupported version {v:?}"))),
        None => {
            return Err(CorpusError::Meta(
                "missing '#! conform-corpus:' header".into(),
            ))
        }
    }
    let target = target.ok_or_else(|| CorpusError::Meta("missing target".into()))?;
    // Validate the target name now so replay errors point at the metadata.
    if Target::from_name(&target).is_none() {
        return Err(CorpusError::Meta(format!("unknown target {target:?}")));
    }
    let oracle = oracle.ok_or_else(|| CorpusError::Meta("missing oracle".into()))?;
    let expect = expect.ok_or_else(|| CorpusError::Meta("missing expect".into()))?;
    let trace = parse_trace(text).map_err(|e| CorpusError::Trace(e.to_string()))?;
    Ok(CorpusEntry {
        target,
        oracle,
        expect,
        note,
        instance: trace.instance,
    })
}

/// Replays one entry: checks that the recorded expectation still holds.
pub fn replay(entry: &CorpusEntry) -> Result<(), String> {
    let target = Target::from_name(&entry.target)
        .ok_or_else(|| format!("unknown target {:?}", entry.target))?;
    let fails = still_fails(&target, entry.oracle, &entry.instance);
    match (entry.expect, fails) {
        (Expectation::Violate, true) | (Expectation::Pass, false) => Ok(()),
        (Expectation::Violate, false) => Err(format!(
            "{} / {}: expected a violation but the oracle now passes — if this \
             bug was just fixed, flip the entry to 'expect: pass'",
            entry.target,
            entry.oracle.id()
        )),
        (Expectation::Pass, true) => Err(format!(
            "{} / {}: regression — the fixed bug is back",
            entry.target,
            entry.oracle.id()
        )),
    }
}

fn content_fingerprint(s: &str) -> u64 {
    // splitmix64 over bytes: stable across platforms, good enough to keep
    // distinct instances in distinct files.
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
    }
    h
}

/// The deterministic file name for an entry:
/// `<target>.<oracle>.<fingerprint>.csv` with `:` made path-safe.
pub fn entry_filename(entry: &CorpusEntry) -> String {
    let safe_target = entry.target.replace(':', "-");
    let body = write_trace(&entry.instance, None);
    format!(
        "{safe_target}.{}.{:08x}.csv",
        entry.oracle.id(),
        content_fingerprint(&body) as u32
    )
}

/// Writes an entry into `dir` (created if missing) under its deterministic
/// name. Returns the path. Overwrites an existing identical-named file —
/// the name fingerprints the instance, so this is idempotent.
pub fn save_entry(dir: &Path, entry: &CorpusEntry) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(entry_filename(entry));
    std::fs::write(&path, render_entry(entry))
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

/// Loads every `*.csv` corpus entry in `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let entry = parse_entry(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        entries.push((path, entry));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;

    fn sample_entry() -> CorpusEntry {
        CorpusEntry {
            target: "chaos:drop-starts:batch".into(),
            oracle: OracleKind::Window,
            expect: Expectation::Violate,
            note: "shrunk from int[n=6,mu=2,tight,burst] seed 7".into(),
            instance: Instance::new(vec![Job::adp(0.0, 2.0, 1.0)]),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let entry = sample_entry();
        let text = render_entry(&entry);
        let parsed = parse_entry(&text).unwrap();
        assert_eq!(parsed.target, entry.target);
        assert_eq!(parsed.oracle, entry.oracle);
        assert_eq!(parsed.expect, entry.expect);
        assert_eq!(parsed.note, entry.note);
        assert_eq!(parsed.instance, entry.instance);
    }

    #[test]
    fn corpus_files_are_plain_traces() {
        let text = render_entry(&sample_entry());
        let trace = parse_trace(&text).unwrap();
        assert_eq!(trace.instance.len(), 1);
    }

    #[test]
    fn replay_validates_expectations() {
        // The chaos self-test entry must still violate.
        assert!(replay(&sample_entry()).is_ok());
        // A real scheduler passes the window oracle on the same instance.
        let mut pass = sample_entry();
        pass.target = "batch".into();
        pass.expect = Expectation::Pass;
        assert!(replay(&pass).is_ok());
        // And the mismatched expectations both fail with useful messages.
        let mut stale = sample_entry();
        stale.target = "batch".into();
        assert!(replay(&stale).unwrap_err().contains("expected a violation"));
        let mut regressed = sample_entry();
        regressed.expect = Expectation::Pass;
        assert!(replay(&regressed).unwrap_err().contains("regression"));
    }

    #[test]
    fn rejects_malformed_metadata() {
        assert!(parse_entry("0,1,1\n").is_err(), "missing header");
        let bad_oracle = "#! conform-corpus: v1\n#! target: batch\n#! oracle: nope\n\
                          #! expect: pass\n0,1,1\n";
        assert!(matches!(parse_entry(bad_oracle), Err(CorpusError::Meta(_))));
        let bad_target = "#! conform-corpus: v1\n#! target: bogus\n#! oracle: window\n\
                          #! expect: pass\n0,1,1\n";
        assert!(matches!(parse_entry(bad_target), Err(CorpusError::Meta(_))));
    }

    #[test]
    fn filenames_are_deterministic_and_path_safe() {
        let entry = sample_entry();
        let name = entry_filename(&entry);
        assert_eq!(name, entry_filename(&entry));
        assert!(!name.contains(':'), "{name}");
        assert!(name.ends_with(".csv"));
        assert!(name.starts_with("chaos-drop-starts-batch.window."));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "fjs-corpus-test-{}-{}",
            std::process::id(),
            content_fingerprint("save_and_load_round_trip")
        ));
        let entry = sample_entry();
        let path = save_entry(&dir, &entry).unwrap();
        assert!(path.exists());
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.instance, entry.instance);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            load_dir(&dir).unwrap().len(),
            0,
            "missing dir is an empty corpus"
        );
    }
}
