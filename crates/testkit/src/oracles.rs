//! The per-scheduler **guarantee table**: invariant oracles that every run
//! must satisfy, plus metamorphic oracles comparing runs on transformed
//! instances.
//!
//! Structural oracles (always applicable):
//!
//! * [`OracleKind::Window`] — the run is clean (completed, no violations, no
//!   rejected actions) and every start lies in `[a(J), d(J)]`;
//! * [`OracleKind::SpanMeasure`] — the reported span equals the measure of
//!   the union of busy intervals, recomputed from the schedule.
//!
//! Contract oracles (per the theorems, when an exact optimum is available):
//!
//! * [`OracleKind::RatioBound`] — `span ≤ bound · OPT` with `bound` from
//!   [`fjs_schedulers::SchedulerKind::ratio_bound_on`] (the seed paper's
//!   `bound(μ)`, or the uniform family's `2` / `1 + λ` on equal-length
//!   instances) and `OPT` from the memoized exact DP ([`fjs_opt::cache`]),
//!   so re-checks of the same (or a translated/scaled/permuted) instance
//!   share one solve.
//!
//! Metamorphic oracles (when the registry declares the invariance):
//!
//! * [`OracleKind::Translation`] — shifting all times by an integer offset
//!   shifts the schedule, leaving the span unchanged;
//! * [`OracleKind::Scaling`] — scaling all times by a power of two scales
//!   the span by the same factor;
//! * [`OracleKind::Permutation`] — when arrivals are pairwise distinct, the
//!   presentation order of jobs in the instance is irrelevant;
//! * [`OracleKind::MaskedLengths`] — a non-clairvoyant scheduler's decisions
//!   before the first completion cannot depend on the hidden lengths.

use crate::target::Target;
use fjs_core::job::{Instance, Job, JobId};
use fjs_core::sim::{Clairvoyance, SimOutcome, TraceEvent, TraceKind};
use fjs_core::time::Dur;
use fjs_opt::{cached_optimal_span_dp, fits_dp};

/// The integer offset used by the translation oracle (exact in `f64` for
/// the integer deck instances).
pub const TRANSLATION_OFFSET: f64 = 97.0;

/// The scale factor used by the scaling oracle: a power of two, so scaling
/// every time field is exact in `f64`.
pub const SCALE_FACTOR: f64 = 4.0;

/// Horizon-width cap for invoking the exact DP inside the conformance loop
/// (the DP's state space grows with the time horizon, not just the job
/// count).
pub const DP_WIDTH_LIMIT: f64 = 96.0;

/// One invariant oracle of the guarantee table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleKind {
    /// Clean run; every start within `[a(J), d(J)]`.
    Window,
    /// Reported span equals the recomputed interval-union measure.
    SpanMeasure,
    /// Span within the proven competitive-ratio bound of the exact optimum.
    RatioBound,
    /// Span invariant under integer time translation.
    Translation,
    /// Span scales linearly under a power-of-two time scaling.
    Scaling,
    /// Instance presentation order is irrelevant (distinct arrivals).
    Permutation,
    /// Pre-completion decisions are independent of masked lengths.
    MaskedLengths,
}

impl OracleKind {
    /// Every oracle, in guarantee-table order.
    pub const ALL: [OracleKind; 7] = [
        OracleKind::Window,
        OracleKind::SpanMeasure,
        OracleKind::RatioBound,
        OracleKind::Translation,
        OracleKind::Scaling,
        OracleKind::Permutation,
        OracleKind::MaskedLengths,
    ];

    /// Stable string id (used in corpus metadata and CLI output).
    pub fn id(&self) -> &'static str {
        match self {
            OracleKind::Window => "window",
            OracleKind::SpanMeasure => "span-measure",
            OracleKind::RatioBound => "ratio-bound",
            OracleKind::Translation => "translation",
            OracleKind::Scaling => "scaling",
            OracleKind::Permutation => "permutation",
            OracleKind::MaskedLengths => "masked-lengths",
        }
    }

    /// Parses a stable id back into the oracle.
    pub fn from_id(id: &str) -> Option<OracleKind> {
        OracleKind::ALL.iter().copied().find(|o| o.id() == id)
    }

    /// One-line description for tables and docs.
    pub fn description(&self) -> &'static str {
        match self {
            OracleKind::Window => "clean run, every start in [a(J), d(J)]",
            OracleKind::SpanMeasure => "span = measure of busy-interval union",
            OracleKind::RatioBound => "span <= bound(mu) * OPT (exact DP)",
            OracleKind::Translation => "span invariant under time translation",
            OracleKind::Scaling => "span scales under power-of-two scaling",
            OracleKind::Permutation => "job presentation order irrelevant",
            OracleKind::MaskedLengths => "pre-completion decisions ignore masked lengths",
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// A concrete oracle failure on a concrete instance.
#[derive(Clone, Debug)]
pub struct OracleViolation {
    /// Which oracle failed.
    pub oracle: OracleKind,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle.id(), self.detail)
    }
}

/// The scheduler-level row of the guarantee table: which oracles this
/// target is subject to at all (instance-independent part). Chaos targets
/// are only subject to the structural oracles — their whole point is to
/// violate them.
pub fn row(target: &Target) -> Vec<OracleKind> {
    let mut row = vec![OracleKind::Window, OracleKind::SpanMeasure];
    if target.is_chaos() {
        return row;
    }
    let kind = target.kind();
    if kind.has_ratio_bound() {
        row.push(OracleKind::RatioBound);
    }
    if kind.translation_invariant() {
        row.push(OracleKind::Translation);
    }
    if kind.scale_invariant() {
        row.push(OracleKind::Scaling);
    }
    row.push(OracleKind::Permutation);
    if target.information_model() == Clairvoyance::NonClairvoyant {
        row.push(OracleKind::MaskedLengths);
    }
    row
}

/// Whether the exact DP optimum is worth computing for this instance
/// inside the conformance loop.
pub fn dp_applicable(inst: &Instance) -> bool {
    if !fits_dp(inst) || inst.is_empty() {
        return false;
    }
    let lo = inst.first_arrival().map(|t| t.get()).unwrap_or(0.0);
    let hi = inst
        .jobs()
        .iter()
        .map(|j| j.deadline().get() + j.length().get())
        .fold(0.0_f64, f64::max);
    hi - lo <= DP_WIDTH_LIMIT
}

/// The exact optimum when [`dp_applicable`], else `None`. Served through
/// the process-wide [`fjs_opt::cache`] — bit-identical to an uncached
/// solve, but shared across targets, metamorphic transforms and sweeps.
pub fn exact_opt(inst: &Instance) -> Option<Dur> {
    if dp_applicable(inst) {
        cached_optimal_span_dp(inst).ok()
    } else {
        None
    }
}

/// The instance-level guarantee table: [`row`] filtered by the conditions
/// the instance must meet for each oracle to be sound.
pub fn applicable(target: &Target, inst: &Instance) -> Vec<OracleKind> {
    row(target)
        .into_iter()
        .filter(|oracle| match oracle {
            OracleKind::RatioBound => dp_applicable(inst),
            OracleKind::Permutation => inst.len() >= 2 && arrivals_distinct(inst),
            OracleKind::MaskedLengths => !inst.is_empty(),
            _ => true,
        })
        .collect()
}

fn arrivals_distinct(inst: &Instance) -> bool {
    let mut arrivals: Vec<f64> = inst.jobs().iter().map(|j| j.arrival().get()).collect();
    arrivals.sort_by(f64::total_cmp);
    arrivals.windows(2).all(|w| w[0] != w[1])
}

/// Shifts every arrival and deadline by `delta` (lengths unchanged).
pub fn translated(inst: &Instance, delta: f64) -> Instance {
    Instance::new(
        inst.jobs()
            .iter()
            .map(|j| {
                Job::adp(
                    j.arrival().get() + delta,
                    j.deadline().get() + delta,
                    j.length().get(),
                )
            })
            .collect(),
    )
}

/// Scales every arrival, deadline and length by `factor`.
pub fn scaled(inst: &Instance, factor: f64) -> Instance {
    Instance::new(
        inst.jobs()
            .iter()
            .map(|j| {
                Job::adp(
                    j.arrival().get() * factor,
                    j.deadline().get() * factor,
                    j.length().get() * factor,
                )
            })
            .collect(),
    )
}

/// Reverses the presentation order of jobs.
pub fn reversed(inst: &Instance) -> Instance {
    Instance::new(inst.jobs().iter().rev().copied().collect())
}

/// Replaces every length with 1 (windows unchanged) — the hidden-length
/// variant for the masked-lengths oracle.
pub fn unit_lengths(inst: &Instance) -> Instance {
    Instance::new(
        inst.jobs()
            .iter()
            .map(|j| Job::adp(j.arrival().get(), j.deadline().get(), 1.0))
            .collect(),
    )
}

fn span_tol(reference: f64) -> f64 {
    1e-9 * (1.0 + reference.abs())
}

fn check_window(out: &SimOutcome) -> Result<(), String> {
    if !out.termination.is_completed() {
        return Err(format!("run did not complete: {:?}", out.termination));
    }
    if !out.unresolved.is_empty() {
        return Err(format!("{} job lengths left unruled", out.unresolved.len()));
    }
    if let Some(v) = out.violations.first() {
        return Err(format!(
            "{} deadline violation(s); first: {} force-started at {}",
            out.violations.len(),
            v.id,
            v.at
        ));
    }
    if let Some(r) = out.rejected_actions.first() {
        return Err(format!(
            "{} rejected action(s); first at t={}: {}",
            out.rejected_actions.len(),
            r.at,
            r.fault
        ));
    }
    if !out.schedule.is_complete() {
        return Err("schedule is missing job starts".into());
    }
    if let Err(e) = out.schedule.validate(&out.instance) {
        return Err(format!("schedule validation failed: {e}"));
    }
    Ok(())
}

fn check_span_measure(out: &SimOutcome) -> Result<(), String> {
    if !out.schedule.is_complete() {
        // Window already reports incompleteness; nothing to measure here.
        return Ok(());
    }
    let recomputed = out.schedule.busy_set(&out.instance).measure();
    if recomputed != out.span {
        return Err(format!(
            "reported span {} != recomputed interval-union measure {}",
            out.span, recomputed
        ));
    }
    Ok(())
}

fn check_ratio(target: &Target, out: &SimOutcome, opt: Dur) -> Result<(), String> {
    // Instance-sensitive bound: the uniform family's guarantees hold on
    // equal-length instances only (and read `1 + λ` there), while the seed
    // paper's schedulers fall through to their `bound(μ)`.
    let bound = match target.kind().ratio_bound_on(&out.instance) {
        Some(b) => b,
        None => return Ok(()),
    };
    let limit = bound * opt.get();
    if out.span.get() > limit + span_tol(limit) {
        return Err(format!(
            "span {} exceeds {:.4} * OPT = {:.4} (mu = {:?}, OPT = {})",
            out.span,
            bound,
            limit,
            out.instance.mu(),
            opt
        ));
    }
    Ok(())
}

fn check_translation(target: &Target, base: &SimOutcome, inst: &Instance) -> Result<(), String> {
    let shifted = target.run_on(&translated(inst, TRANSLATION_OFFSET), false);
    let diff = (shifted.span.get() - base.span.get()).abs();
    if diff > span_tol(base.span.get()) {
        return Err(format!(
            "span changed under +{TRANSLATION_OFFSET} translation: {} -> {}",
            base.span, shifted.span
        ));
    }
    Ok(())
}

fn check_scaling(target: &Target, base: &SimOutcome, inst: &Instance) -> Result<(), String> {
    let scaled_out = target.run_on(&scaled(inst, SCALE_FACTOR), false);
    let expected = base.span.get() * SCALE_FACTOR;
    let diff = (scaled_out.span.get() - expected).abs();
    if diff > span_tol(expected) {
        return Err(format!(
            "span did not scale by {SCALE_FACTOR}: {} -> {} (expected {expected})",
            base.span, scaled_out.span
        ));
    }
    Ok(())
}

fn check_permutation(target: &Target, base: &SimOutcome, inst: &Instance) -> Result<(), String> {
    let rev = target.run_on(&reversed(inst), false);
    // With pairwise-distinct arrivals, the environment releases the same
    // job sequence either way, so outcomes must agree bit for bit.
    if rev.span != base.span {
        return Err(format!(
            "span depends on presentation order: {} vs {} (reversed)",
            base.span, rev.span
        ));
    }
    if rev.schedule != base.schedule {
        return Err("schedule depends on presentation order".into());
    }
    Ok(())
}

/// The decision events (releases, starts, force-starts) strictly before
/// `cutoff`, as comparable tuples.
fn decisions_before(trace: &[TraceEvent], cutoff: f64) -> Vec<(u64, u8, JobId)> {
    trace
        .iter()
        .filter(|e| e.time.get() < cutoff)
        .filter_map(|e| match e.kind {
            TraceKind::Released { id, .. } => Some((e.time.get().to_bits(), 0u8, id)),
            TraceKind::Started { id } => Some((e.time.get().to_bits(), 1u8, id)),
            TraceKind::ForcedStart { id } => Some((e.time.get().to_bits(), 2u8, id)),
            _ => None,
        })
        .collect()
}

fn first_completion(trace: &[TraceEvent]) -> f64 {
    trace
        .iter()
        .find(|e| matches!(e.kind, TraceKind::Completed { .. }))
        .map(|e| e.time.get())
        .unwrap_or(f64::INFINITY)
}

fn check_masked_lengths(target: &Target, base: &SimOutcome, inst: &Instance) -> Result<(), String> {
    // Re-run on an instance whose hidden lengths all differ (set to 1).
    // Until the first completion, a non-clairvoyant scheduler has received
    // no length information, so its decisions must be identical.
    let variant = target.run_on(&unit_lengths(inst), true);
    if inst.uniform_length() == Some(Dur::new(1.0)) {
        // On an already-unit-length instance the transform is the identity,
        // so the oracle degenerates to a no-op — which is itself a contract:
        // the whole run (not just the pre-completion prefix) must replay bit
        // for bit, or the target is nondeterministic.
        if variant.schedule != base.schedule || variant.span != base.span {
            return Err(format!(
                "unit-length instance: identity re-run diverged \
                 (span {} vs {}) — target is nondeterministic",
                base.span, variant.span
            ));
        }
        return Ok(());
    }
    let cutoff = first_completion(&base.trace).min(first_completion(&variant.trace));
    let a = decisions_before(&base.trace, cutoff);
    let b = decisions_before(&variant.trace, cutoff);
    if a != b {
        return Err(format!(
            "pre-completion decisions depend on masked lengths \
             ({} vs {} decision events before t={cutoff})",
            a.len(),
            b.len()
        ));
    }
    Ok(())
}

/// Runs every applicable oracle for `target` on `inst`. `opt` is the
/// precomputed exact optimum (shared across targets by the conformance
/// loop); when `None` the ratio oracle recomputes it if applicable.
///
/// Returns `(checks_run, violations)`.
pub fn check_all(
    target: &Target,
    inst: &Instance,
    opt: Option<Dur>,
) -> (usize, Vec<OracleViolation>) {
    let oracles = applicable(target, inst);
    // Only the masked-lengths oracle reads the base trace; every other
    // oracle works off the outcome, so clairvoyant targets run untraced.
    let base = target.run_on(inst, oracles.contains(&OracleKind::MaskedLengths));
    let mut violations = Vec::new();
    let mut checks = 0;
    for oracle in &oracles {
        let result = match oracle {
            OracleKind::Window => check_window(&base),
            OracleKind::SpanMeasure => check_span_measure(&base),
            OracleKind::RatioBound => match opt.or_else(|| exact_opt(inst)) {
                Some(opt) => check_ratio(target, &base, opt),
                None => continue,
            },
            OracleKind::Translation => check_translation(target, &base, inst),
            OracleKind::Scaling => check_scaling(target, &base, inst),
            OracleKind::Permutation => check_permutation(target, &base, inst),
            OracleKind::MaskedLengths => check_masked_lengths(target, &base, inst),
        };
        checks += 1;
        if let Err(detail) = result {
            violations.push(OracleViolation {
                oracle: *oracle,
                detail,
            });
        }
    }
    (checks, violations)
}

/// Re-checks one specific oracle on a candidate instance — the failure
/// predicate the shrinker preserves. Returns `true` when the oracle still
/// fails with the same [`OracleKind`].
pub fn still_fails(target: &Target, oracle: OracleKind, inst: &Instance) -> bool {
    if inst.is_empty() || !applicable(target, inst).contains(&oracle) {
        return false;
    }
    let base = target.run_on(inst, oracle == OracleKind::MaskedLengths);
    let result = match oracle {
        OracleKind::Window => check_window(&base),
        OracleKind::SpanMeasure => check_span_measure(&base),
        OracleKind::RatioBound => match exact_opt(inst) {
            Some(opt) => check_ratio(target, &base, opt),
            None => return false,
        },
        OracleKind::Translation => check_translation(target, &base, inst),
        OracleKind::Scaling => check_scaling(target, &base, inst),
        OracleKind::Permutation => check_permutation(target, &base, inst),
        OracleKind::MaskedLengths => check_masked_lengths(target, &base, inst),
    };
    result.is_err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_schedulers::SchedulerKind;

    fn mixed_instance() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(1.0, 4.0, 2.0),
            Job::adp(3.0, 3.0, 1.0),
            Job::adp(5.0, 9.0, 3.0),
        ])
    }

    #[test]
    fn real_schedulers_pass_all_oracles_on_a_mixed_instance() {
        let inst = mixed_instance();
        let opt = exact_opt(&inst);
        assert!(opt.is_some(), "small integer instance must be DP-solvable");
        for kind in SchedulerKind::registered_set() {
            let target = Target::Kind(kind);
            let (checks, violations) = check_all(&target, &inst, opt);
            assert!(checks >= 4, "{}: only {checks} checks ran", target.name());
            assert!(
                violations.is_empty(),
                "{}: {}",
                target.name(),
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }

    #[test]
    fn chaos_target_fails_the_window_oracle() {
        let inst = mixed_instance();
        let (_, violations) = check_all(&Target::default_chaos(), &inst, None);
        assert!(
            violations.iter().any(|v| v.oracle == OracleKind::Window),
            "injected drop-starts must violate the window oracle: {violations:?}"
        );
        assert!(still_fails(
            &Target::default_chaos(),
            OracleKind::Window,
            &inst
        ));
    }

    #[test]
    fn oracle_ids_round_trip() {
        for o in OracleKind::ALL {
            assert_eq!(OracleKind::from_id(o.id()), Some(o));
        }
        assert_eq!(OracleKind::from_id("nope"), None);
    }

    #[test]
    fn guarantee_rows_match_registry_flags() {
        let batch = row(&Target::Kind(SchedulerKind::Batch));
        assert!(batch.contains(&OracleKind::RatioBound));
        assert!(batch.contains(&OracleKind::MaskedLengths));
        assert!(batch.contains(&OracleKind::Scaling));

        let cdb = row(&Target::Kind(SchedulerKind::cdb_optimal()));
        assert!(cdb.contains(&OracleKind::RatioBound));
        assert!(
            !cdb.contains(&OracleKind::Scaling),
            "CDB classes are base-anchored"
        );
        assert!(
            !cdb.contains(&OracleKind::MaskedLengths),
            "CDB is clairvoyant"
        );

        let chaos = row(&Target::default_chaos());
        assert_eq!(chaos, vec![OracleKind::Window, OracleKind::SpanMeasure]);
    }

    #[test]
    fn uniform_family_rows_gate_on_uniform_instances() {
        // UnitGreedy has no μ-parameterized bound, but its row must still
        // carry the ratio oracle (bound materializes per instance as 1+λ).
        let row = row(&Target::Kind(SchedulerKind::UnitGreedy));
        assert!(row.contains(&OracleKind::RatioBound));
        assert!(row.contains(&OracleKind::Scaling));
        assert!(row.contains(&OracleKind::MaskedLengths));

        // On a mixed instance the bound is vacuous: the check passes
        // whatever the span, because ratio_bound_on yields None.
        let mixed = mixed_instance();
        let opt = exact_opt(&mixed);
        let (_, violations) = check_all(&Target::Kind(SchedulerKind::UnitGreedy), &mixed, opt);
        assert!(
            violations
                .iter()
                .all(|v| v.oracle != OracleKind::RatioBound),
            "mixed instance must not arm the uniform bound: {violations:?}"
        );
    }

    #[test]
    fn uniform_instances_pass_the_one_plus_lambda_bound() {
        // λ = 2 at p = 1: UnitGreedy/UnitEndfit are bound by 3·OPT,
        // UnitAligned by 2·OPT, and all of them meet it.
        let inst = Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(1.0, 1.0, 1.0),
            Job::adp(3.0, 5.0, 1.0),
            Job::adp(4.0, 6.0, 1.0),
        ]);
        let opt = exact_opt(&inst);
        assert!(opt.is_some());
        for kind in SchedulerKind::uniform_set() {
            let (checks, violations) = check_all(&Target::Kind(kind), &inst, opt);
            assert!(checks >= 5, "{kind:?}: only {checks} checks ran");
            assert!(violations.is_empty(), "{kind:?}: {violations:?}");
        }
    }

    #[test]
    fn scaling_rescales_the_uniform_unit() {
        // The scaling transform multiplies lengths too, so a uniform
        // instance stays uniform with a rescaled unit and *unchanged*
        // normalized laxity — which is why the uniform family's bounds are
        // scale-invariant and the scaling oracle applies to them.
        let inst = Instance::new(vec![Job::adp(0.0, 4.0, 2.0), Job::adp(1.0, 3.0, 2.0)]);
        let s = scaled(&inst, SCALE_FACTOR);
        assert_eq!(s.uniform_length(), Some(Dur::new(2.0 * SCALE_FACTOR)));
        assert_eq!(s.uniform_laxity_ratio(), inst.uniform_laxity_ratio());
    }

    #[test]
    fn unit_lengths_is_identity_on_unit_instances() {
        // The masked-lengths transform is a no-op exactly on p = 1
        // instances; the oracle then demands full-run equality.
        let unit = Instance::new(vec![Job::adp(0.0, 2.0, 1.0), Job::adp(1.0, 4.0, 1.0)]);
        assert_eq!(unit_lengths(&unit), unit);
        for kind in SchedulerKind::uniform_set() {
            let (_, violations) = check_all(&Target::Kind(kind), &unit, None);
            assert!(violations.is_empty(), "{kind:?}: {violations:?}");
        }
    }

    #[test]
    fn transforms_preserve_job_count_and_validity() {
        let inst = mixed_instance();
        assert_eq!(translated(&inst, TRANSLATION_OFFSET).len(), inst.len());
        assert_eq!(scaled(&inst, SCALE_FACTOR).len(), inst.len());
        assert_eq!(reversed(&inst).len(), inst.len());
        for (_, j) in unit_lengths(&inst).iter() {
            assert_eq!(j.length().get(), 1.0);
        }
    }
}
