//! Delta-debugging shrinker: minimizes a violating instance while
//! preserving the failure.
//!
//! Passes, iterated to a fixpoint under an evaluation budget:
//!
//! 1. **ddmin job removal** — try deleting chunks of jobs (half, quarters,
//!    …, singles), keeping any deletion that still fails;
//! 2. **field simplification** — per job: round times to integers, shorten
//!    the length (halve, then to 1), tighten the deadline toward the
//!    arrival (halve the slack, then rigid);
//! 3. **global length unification** — on an equal-length instance with
//!    `p > 1`, rescale the common length to 1 for *every* job at once;
//! 4. **global shift** — translate the whole instance so the first arrival
//!    is 0.
//!
//! Every candidate is validated by re-running the caller's failure
//! predicate, so the minimized instance fails *the same oracle* as the
//! original. The shrinker never invents values: candidates only remove
//! jobs or move fields toward 0/1, so integral instances stay integral.
//!
//! **Uniformity invariant.** A counterexample from the uniform-jobs deck
//! must minimize to a uniform-jobs counterexample: on an instance whose
//! lengths are all equal, per-job length mutations are suppressed (lengths
//! only change through the all-at-once unification pass), so *every*
//! candidate the predicate ever sees keeps the lengths-all-equal invariant.
//! Job removal, deadline tightening and time shifts preserve it trivially.

use fjs_core::job::{Instance, Job};

/// Default cap on failure-predicate evaluations per shrink.
pub const DEFAULT_SHRINK_BUDGET: usize = 4096;

/// What a shrink run did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShrinkStats {
    /// Failure-predicate evaluations spent.
    pub evaluations: usize,
    /// Candidates accepted (each strictly simplified the instance).
    pub accepted: usize,
}

struct Shrinker<'a> {
    fails: &'a dyn Fn(&Instance) -> bool,
    budget: usize,
    stats: ShrinkStats,
}

impl Shrinker<'_> {
    fn exhausted(&self) -> bool {
        self.stats.evaluations >= self.budget
    }

    /// Evaluates a candidate; returns `true` (and counts an acceptance)
    /// when it still fails.
    fn accept(&mut self, candidate: &Instance) -> bool {
        if self.exhausted() {
            return false;
        }
        self.stats.evaluations += 1;
        if (self.fails)(candidate) {
            self.stats.accepted += 1;
            true
        } else {
            false
        }
    }
}

fn without_range(inst: &Instance, lo: usize, hi: usize) -> Instance {
    Instance::new(
        inst.jobs()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < lo || *i >= hi)
            .map(|(_, j)| *j)
            .collect(),
    )
}

fn with_job(inst: &Instance, idx: usize, job: Job) -> Instance {
    Instance::new(
        inst.jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| if i == idx { job } else { *j })
            .collect(),
    )
}

/// ddmin pass: removes as many jobs as the failure allows.
fn ddmin_jobs(sh: &mut Shrinker<'_>, cur: &mut Instance) -> bool {
    let mut progress = false;
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() && cur.len() > 1 && !sh.exhausted() {
            let hi = (i + chunk).min(cur.len());
            let candidate = without_range(cur, i, hi);
            if !candidate.is_empty() && sh.accept(&candidate) {
                *cur = candidate;
                progress = true;
                // Same index now holds the next chunk; retry in place.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 || sh.exhausted() {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    progress
}

/// Simplification candidates for one job, most aggressive first. With
/// `pin_length`, length-changing candidates are suppressed so a lengths-
/// all-equal instance can never drift mixed through a per-job mutation.
fn job_candidates(j: &Job, pin_length: bool) -> Vec<Job> {
    let (a, d, p) = (j.arrival().get(), j.deadline().get(), j.length().get());
    let mut out = Vec::new();
    let mut push = |a2: f64, d2: f64, p2: f64| {
        let d2 = d2.max(a2);
        let p2 = p2.max(1.0_f64.min(p));
        if p2 > 0.0 && (a2, d2, p2) != (a, d, p) {
            out.push(Job::adp(a2, d2, p2));
        }
    };
    // Round times to integers (floor keeps d >= a; length rounds up so it
    // stays positive).
    push(a.floor(), d.floor(), if pin_length { p } else { p.ceil() });
    if !pin_length {
        // Shorten the length.
        push(a, d, (p / 2.0).floor().max(1.0));
        push(a, d, 1.0);
    }
    // Tighten the deadline toward the arrival.
    push(a, a + ((d - a) / 2.0).floor(), p);
    push(a, a, p);
    out
}

/// Field pass: simplify each job in place. On a multi-job uniform instance
/// lengths are pinned (see the module docs); a single job is trivially
/// uniform whatever its length, so it keeps the full candidate set.
fn simplify_fields(sh: &mut Shrinker<'_>, cur: &mut Instance) -> bool {
    let mut progress = false;
    let mut idx = 0;
    while idx < cur.len() && !sh.exhausted() {
        let pin_length = cur.len() > 1 && cur.is_uniform();
        let candidates = job_candidates(&cur.jobs()[idx], pin_length);
        for job in candidates {
            let candidate = with_job(cur, idx, job);
            if sh.accept(&candidate) {
                *cur = candidate;
                progress = true;
                break; // re-derive candidates from the simplified job
            }
        }
        idx += 1;
    }
    progress
}

/// Unification pass: on an equal-length instance with `p > 1`, try
/// rescaling the common length to 1 for every job at once — the only
/// length mutation allowed to touch a uniform instance.
fn unify_length_to_one(sh: &mut Shrinker<'_>, cur: &mut Instance) -> bool {
    match cur.uniform_length() {
        Some(p) if p.get() > 1.0 => {}
        _ => return false,
    }
    let candidate = Instance::new(
        cur.jobs()
            .iter()
            .map(|j| Job::adp(j.arrival().get(), j.deadline().get(), 1.0))
            .collect(),
    );
    if sh.accept(&candidate) {
        *cur = candidate;
        true
    } else {
        false
    }
}

/// Shift pass: move the first arrival to 0.
fn shift_to_zero(sh: &mut Shrinker<'_>, cur: &mut Instance) -> bool {
    let t0 = match cur.first_arrival() {
        Some(t) if t.get() > 0.0 => t.get(),
        _ => return false,
    };
    let candidate = crate::oracles::translated(cur, -t0);
    if sh.accept(&candidate) {
        *cur = candidate;
        true
    } else {
        false
    }
}

/// Minimizes `inst` under `fails`, which must return `true` for `inst`
/// itself (the shrinker asserts nothing about it and simply returns the
/// input unchanged if every simplification loses the failure).
///
/// Deterministic: same input and predicate, same minimized instance.
pub fn shrink(
    inst: &Instance,
    budget: usize,
    fails: impl Fn(&Instance) -> bool,
) -> (Instance, ShrinkStats) {
    let mut sh = Shrinker {
        fails: &fails,
        budget,
        stats: ShrinkStats::default(),
    };
    let mut cur = inst.clone();
    loop {
        let mut progress = false;
        progress |= ddmin_jobs(&mut sh, &mut cur);
        progress |= simplify_fields(&mut sh, &mut cur);
        progress |= unify_length_to_one(&mut sh, &mut cur);
        progress |= shift_to_zero(&mut sh, &mut cur);
        if !progress || sh.exhausted() {
            break;
        }
    }
    (cur, sh.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(a: f64, d: f64, p: f64) -> Job {
        Job::adp(a, d, p)
    }

    #[test]
    fn shrinks_to_the_single_relevant_job() {
        // Failure: "some job has length >= 4".
        let inst = Instance::new(vec![
            job(0.0, 2.0, 1.0),
            job(3.0, 8.0, 5.0),
            job(4.0, 6.0, 2.0),
            job(9.0, 12.0, 1.0),
        ]);
        let fails = |i: &Instance| i.jobs().iter().any(|j| j.length().get() >= 4.0);
        let (min, stats) = shrink(&inst, DEFAULT_SHRINK_BUDGET, fails);
        assert_eq!(min.len(), 1, "only the long job is needed: {min:?}");
        // Halving 5 → 2 loses the failure, so the length survives at 5;
        // the window collapses to rigid and the arrival shifts to 0.
        assert_eq!(min.jobs()[0].length().get(), 5.0);
        assert_eq!(min.jobs()[0].arrival().get(), 0.0, "shifted to the origin");
        assert_eq!(
            min.jobs()[0].deadline().get(),
            0.0,
            "deadline tightened to arrival"
        );
        assert!(stats.accepted >= 2);
        assert!(stats.evaluations <= DEFAULT_SHRINK_BUDGET);
    }

    #[test]
    fn preserves_failure_when_nothing_simplifies() {
        let inst = Instance::new(vec![job(0.0, 0.0, 1.0)]);
        let (min, _) = shrink(&inst, DEFAULT_SHRINK_BUDGET, |_| true);
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn returns_input_when_predicate_is_fragile() {
        // Predicate only holds for the exact original: nothing shrinks.
        let inst = Instance::new(vec![job(1.0, 3.0, 2.0), job(2.0, 5.0, 3.0)]);
        let orig = inst.clone();
        let (min, stats) = shrink(&inst, DEFAULT_SHRINK_BUDGET, move |i| *i == orig);
        assert_eq!(min, inst);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn is_deterministic() {
        let inst = Instance::new(vec![
            job(0.5, 2.5, 1.5),
            job(1.0, 7.0, 4.0),
            job(2.0, 2.0, 1.0),
        ]);
        let fails = |i: &Instance| i.len() >= 2;
        let (a, _) = shrink(&inst, DEFAULT_SHRINK_BUDGET, fails);
        let (b, _) = shrink(&inst, DEFAULT_SHRINK_BUDGET, fails);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn uniform_instances_stay_uniform_through_every_candidate() {
        use std::cell::RefCell;
        // Every single candidate the predicate sees — accepted or not —
        // must keep the lengths-all-equal invariant.
        let inst = Instance::new(
            (0..6)
                .map(|i| job(2.0 * i as f64, 2.0 * i as f64 + 3.0, 3.0))
                .collect(),
        );
        assert!(inst.is_uniform());
        let seen: RefCell<Vec<Instance>> = RefCell::new(Vec::new());
        let fails = |i: &Instance| {
            seen.borrow_mut().push(i.clone());
            i.len() >= 2
        };
        let (min, _) = shrink(&inst, DEFAULT_SHRINK_BUDGET, fails);
        assert!(min.is_uniform(), "minimized instance went mixed: {min:?}");
        assert_eq!(min.len(), 2);
        let seen = seen.into_inner();
        assert!(!seen.is_empty());
        for cand in &seen {
            assert!(cand.is_uniform(), "mixed-length candidate: {cand:?}");
        }
    }

    #[test]
    fn unification_rescales_the_common_length_to_one() {
        // The failure doesn't care about lengths, so the all-at-once
        // rescale is accepted and p = 5 collapses to 1 on both jobs.
        let inst = Instance::new(vec![job(0.0, 2.0, 5.0), job(1.0, 4.0, 5.0)]);
        let (min, _) = shrink(&inst, DEFAULT_SHRINK_BUDGET, |i| i.len() >= 2);
        assert_eq!(min.uniform_length().map(|p| p.get()), Some(1.0));
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn respects_the_budget() {
        let inst = Instance::new(
            (0..30)
                .map(|i| job(i as f64, i as f64 + 3.0, 2.0))
                .collect(),
        );
        let (_, stats) = shrink(&inst, 10, |_| true);
        assert!(stats.evaluations <= 10);
    }
}
