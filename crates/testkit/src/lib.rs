//! # fjs-testkit
//!
//! Conformance testkit for the FJS workspace: the paper's theorems and the
//! engine's contracts, wired into a systematic falsification loop.
//!
//! * [`target`] — what gets tested: registered schedulers, or schedulers
//!   deliberately wrapped in `ChaosScheduler` to self-test the harness;
//! * [`oracles`] — the per-scheduler **guarantee table**: structural
//!   invariants (clean runs, window-respecting starts, span = interval
//!   union measure), competitive-ratio contracts against the exact DP
//!   optimum, and metamorphic invariances (translation, scaling,
//!   permutation, masked lengths);
//! * [`mod@shrink`] — a delta-debugging shrinker minimizing violating
//!   instances while preserving the failing oracle;
//! * [`corpus`] — counterexamples persisted as annotated CSV traces under
//!   `tests/corpus/` and replayed by unit tests;
//! * [`conform`] — the seeded conformance loop (`fjs conform`), fanning
//!   deck cases out through the deterministic `fjs_analysis::sharded_map`
//!   executor and sharing exact optima via the `fjs_opt::cache` memo.
//!
//! The deck cases come from [`fjs_workloads::families`]: integer instance
//! families parameterized by `μ`, deadline slack and load, plus a
//! uniform-lengths family, so exact optima and metamorphic comparisons are
//! exact by construction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conform;
pub mod corpus;
pub mod oracles;
pub mod shrink;
pub mod target;

pub use conform::{
    all_targets, run_conformance, run_conformance_with, uniform_targets, ConformConfig,
    ConformHooks, ConformReport, DeckKind, Failure,
};
pub use corpus::{
    entry_filename, load_dir, parse_entry, render_entry, replay, save_entry, CorpusEntry,
    CorpusError, Expectation,
};
pub use oracles::{
    applicable, check_all, exact_opt, row, still_fails, OracleKind, OracleViolation,
};
pub use shrink::{shrink, ShrinkStats, DEFAULT_SHRINK_BUDGET};
pub use target::{set_watchdog_events, watchdog_events, Target, CONFORM_MAX_EVENTS};
