//! Conformance targets: a real registered scheduler, or a scheduler
//! deliberately wrapped in [`ChaosScheduler`] so the harness can prove it
//! catches injected contract violations.

use fjs_core::faults::{ChaosScheduler, SchedFaultMode};
use fjs_core::job::Instance;
use fjs_core::sim::{run_with_config, Clairvoyance, SimConfig, SimOutcome, StaticEnv, TraceMode};
use fjs_schedulers::SchedulerKind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default event budget per conformance run. The deck instances are tiny,
/// so hitting this means a runaway wakeup loop — reported as a violation,
/// not a hang.
pub const CONFORM_MAX_EVENTS: usize = 1_000_000;

/// The process-wide watchdog budget [`Target::run_on`] applies.
static WATCHDOG_EVENTS: AtomicUsize = AtomicUsize::new(CONFORM_MAX_EVENTS);

/// Overrides the watchdog event budget for every subsequent
/// [`Target::run_on`] in this process (the CLI's `--watchdog-events`).
/// Process-global because the budget threads through every oracle and
/// shrinker re-run; set it once before a sweep, not concurrently with one.
pub fn set_watchdog_events(max_events: usize) {
    WATCHDOG_EVENTS.store(max_events.max(1), Ordering::Relaxed);
}

/// The watchdog event budget currently in force.
pub fn watchdog_events() -> usize {
    WATCHDOG_EVENTS.load(Ordering::Relaxed)
}

/// What the conformance harness runs and checks.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Target {
    /// A registered scheduler configuration, run at its weakest supported
    /// information model.
    Kind(SchedulerKind),
    /// `inner` wrapped in a [`ChaosScheduler`] injecting `mode` — a
    /// *known-buggy* subject used to self-test the harness.
    Chaos {
        /// The wrapped scheduler.
        inner: SchedulerKind,
        /// The injected fault mode.
        mode: SchedFaultMode,
    },
}

impl Target {
    /// Parses a target name: a registry short name (`batch`, `cdb`, …) or
    /// `chaos:<mode>:<inner>` (e.g. `chaos:drop-starts:batch`).
    pub fn from_name(name: &str) -> Option<Target> {
        if let Some(rest) = name.strip_prefix("chaos:") {
            let (mode_name, inner_name) = rest.split_once(':')?;
            let mode = *SchedFaultMode::ALL
                .iter()
                .find(|m| m.label() == mode_name)?;
            let inner = SchedulerKind::from_short_name(inner_name)?;
            return Some(Target::Chaos { inner, mode });
        }
        SchedulerKind::from_short_name(name).map(Target::Kind)
    }

    /// Stable name, the inverse of [`Target::from_name`].
    pub fn name(&self) -> String {
        match self {
            Target::Kind(k) => k.short_name().to_string(),
            Target::Chaos { inner, mode } => {
                format!("chaos:{}:{}", mode.label(), inner.short_name())
            }
        }
    }

    /// The underlying scheduler kind (the inner one for chaos targets).
    pub fn kind(&self) -> SchedulerKind {
        match *self {
            Target::Kind(k) => k,
            Target::Chaos { inner, .. } => inner,
        }
    }

    /// Whether this is a deliberately faulty harness-self-test target.
    pub fn is_chaos(&self) -> bool {
        matches!(self, Target::Chaos { .. })
    }

    /// The information model the run uses.
    pub fn information_model(&self) -> Clairvoyance {
        self.kind().information_model()
    }

    /// Runs the target on `inst`, optionally recording the full event
    /// trace, under the [`watchdog_events`] budget.
    pub fn run_on(&self, inst: &Instance, record_trace: bool) -> SimOutcome {
        let config = SimConfig {
            max_events: watchdog_events(),
            trace: if record_trace {
                TraceMode::Full
            } else {
                TraceMode::Off
            },
            ..SimConfig::default()
        };
        let env = StaticEnv::new(inst, self.information_model());
        match *self {
            Target::Kind(kind) => run_with_config(env, kind.build(), config),
            Target::Chaos { inner, mode } => {
                run_with_config(env, ChaosScheduler::new(inner.build(), mode), config)
            }
        }
    }

    /// The default self-test target: Batch wrapped in a start-dropping
    /// chaos layer, which forces deadline starts the engine records as
    /// violations.
    pub fn default_chaos() -> Target {
        Target::Chaos {
            inner: SchedulerKind::Batch,
            mode: SchedFaultMode::DropStarts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in SchedulerKind::registered_set() {
            let t = Target::Kind(kind);
            assert_eq!(Target::from_name(&t.name()), Some(t));
        }
        let c = Target::default_chaos();
        assert_eq!(c.name(), "chaos:drop-starts:batch");
        assert_eq!(Target::from_name(&c.name()), Some(c));
        assert_eq!(Target::from_name("chaos:nope:batch"), None);
        assert_eq!(Target::from_name("bogus"), None);
    }

    #[test]
    fn chaos_target_produces_violations() {
        let inst = Instance::new(vec![
            fjs_core::job::Job::adp(0.0, 2.0, 1.0),
            fjs_core::job::Job::adp(0.0, 3.0, 2.0),
        ]);
        let out = Target::default_chaos().run_on(&inst, false);
        assert!(!out.violations.is_empty(), "drop-starts must force-start");
    }
}
