//! The **Theorem 4.1 adversary**: an adaptive clairvoyant construction
//! forcing every deterministic online scheduler towards ratio
//! `φ = (√5+1)/2`.
//!
//! Rounds are released at times `T_i = (i−1)(φ+1)`. Round `i` contains a
//! *short* job (laxity 0, length 1) and a *long* job (length `φ`, laxity
//! `(n−i+1)(φ+1)`). The adversary watches whether the scheduler starts the
//! long job inside the short job's active interval `[T_i, T_i+1)`:
//!
//! * **No** → stop releasing. The scheduler pays `φ+1` for this round on
//!   top of `φ` per earlier round, while OPT stacks all long jobs at `T_i`
//!   (they are all still startable) for a span of `φ + (i−1)`; the ratio is
//!   exactly `φ` in every branch.
//! * **Yes** → the long job's interval is pinned disjoint from every other
//!   round's long interval; continue to round `i+1`.
//!
//! After `n` rounds the game stops regardless; the online span is at least
//! `nφ` versus OPT `φ + (n−1)` — ratio → `φ` as `n → ∞`.

use fjs_core::job::{Instance, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::sim::{Clairvoyance, Environment, JobSpec, World};
use fjs_core::time::{Dur, Time};

/// The golden ratio `φ = (√5 + 1)/2`.
pub fn phi() -> f64 {
    (5.0_f64.sqrt() + 1.0) / 2.0
}

/// The adaptive Theorem 4.1 adversary. Implements [`Environment`]
/// (clairvoyant: all lengths are fixed at release).
#[derive(Clone, Debug)]
pub struct CvAdversary {
    /// Maximum number of rounds `n`.
    max_rounds: usize,
    /// Rounds released so far; each entry is `(short_id, long_id, T_i)`.
    rounds: Vec<(JobId, JobId, Time)>,
    /// Whether the scheduler declined a long job (game over).
    declined: bool,
}

impl CvAdversary {
    /// Creates the adversary with at most `n ≥ 1` rounds.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one round");
        CvAdversary {
            max_rounds: n,
            rounds: Vec::new(),
            declined: false,
        }
    }

    /// Rounds released so far.
    pub fn rounds_released(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the scheduler survived all `n` rounds (never declined to
    /// start a long job inside the short window).
    pub fn ran_full_course(&self) -> bool {
        self.rounds.len() == self.max_rounds && !self.declined
    }

    /// Whether round `i` (0-based) had its long job started inside the
    /// short job's active interval `[T_i, T_i + 1)`.
    fn long_started_in_window(&self, i: usize, world: &World) -> bool {
        let (_, long_id, t_i) = self.rounds[i];
        match world.job(long_id).start() {
            Some(s) => s >= t_i && s < t_i + Dur::new(1.0),
            None => false,
        }
    }

    /// The paper's counter-schedule on the materialized instance: all long
    /// jobs start at the last round's release time, all short jobs at their
    /// arrivals. Always feasible by construction of the laxities.
    pub fn prescribed_schedule(&self, instance: &Instance) -> Schedule {
        let t_last = self.rounds.last().expect("at least one round").2;
        let mut schedule = Schedule::with_len(instance.len());
        for &(short, long, t_i) in &self.rounds {
            schedule.set_start(short, t_i);
            schedule.set_start(long, t_last);
        }
        schedule
    }
}

impl Environment for CvAdversary {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::Clairvoyant
    }

    fn next_release_time(&mut self, world: &World) -> Option<Time> {
        if self.declined {
            return None;
        }
        let i = self.rounds.len();
        if i == 0 {
            return Some(Time::ZERO);
        }
        if i >= self.max_rounds {
            return None;
        }
        // The decision for round i+1 is made at its nominal release time
        // T_{i+1}; the release may turn out empty if the scheduler declined
        // to start round i's long job inside the short window. We can only
        // *know* after T_i + 1, and T_{i+1} = T_i + φ + 1 > T_i + 1, so the
        // start history at T_{i+1} is conclusive.
        let t_next = Time::from_dur(Dur::new(i as f64 * (phi() + 1.0)));
        if world.now() >= t_next || world.now() >= self.rounds[i - 1].2 + Dur::new(1.0) {
            // Window already closed: decide now to avoid a pointless visit.
            if !self.long_started_in_window(i - 1, world) {
                self.declined = true;
                return None;
            }
        }
        Some(t_next)
    }

    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        let i = self.rounds.len();
        if i > 0 && !self.long_started_in_window(i - 1, world) {
            // The scheduler declined: terminate the game.
            self.declined = true;
            return Vec::new();
        }
        let first_id = world.num_jobs() as u32;
        let short = JobId(first_id);
        let long = JobId(first_id + 1);
        self.rounds.push((short, long, now));
        let remaining = (self.max_rounds - i) as f64; // n − i + 1 with 1-based i
        vec![
            JobSpec::fixed(now, Dur::new(1.0)), // short: laxity 0
            JobSpec::fixed(now + Dur::new(remaining * (phi() + 1.0)), Dur::new(phi())),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;
    use fjs_core::sim::run;

    /// Starts everything at arrival: always starts the long job inside the
    /// short window, so the game runs the full course.
    struct EagerTest;
    impl OnlineScheduler for EagerTest {
        fn name(&self) -> String {
            "eager-test".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    /// Starts jobs at their deadlines: never starts a long job inside the
    /// short window, so the game stops after round 1.
    struct LazyTest;
    impl OnlineScheduler for LazyTest {
        fn name(&self) -> String {
            "lazy-test".into()
        }
        fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
        fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
            ctx.start(id);
        }
    }

    #[test]
    fn eager_runs_full_course_and_pays_phi_per_round() {
        let n = 10;
        let mut adv = CvAdversary::new(n);
        let out = run(&mut adv, EagerTest);
        assert!(out.is_feasible());
        assert!(adv.ran_full_course());
        assert_eq!(out.instance.len(), 2 * n);
        // Each round costs φ (long started with the short at T_i).
        let expect = n as f64 * phi();
        assert!(
            (out.span.get() - expect).abs() < 1e-9,
            "span {} vs {}",
            out.span,
            expect
        );
        // Prescribed: all longs at T_n → span φ + (n−1).
        let presc = adv.prescribed_schedule(&out.instance);
        assert!(presc.validate(&out.instance).is_ok());
        let presc_span = presc.span(&out.instance);
        assert!((presc_span.get() - (phi() + (n - 1) as f64)).abs() < 1e-9);
        let ratio = out.span.ratio(presc_span);
        // nφ / (φ + n − 1) → φ from below.
        assert!(ratio > 1.4 && ratio < phi() + 1e-9);
    }

    #[test]
    fn declining_scheduler_stops_the_game() {
        let mut adv = CvAdversary::new(10);
        let out = run(&mut adv, LazyTest);
        assert!(out.is_feasible());
        assert_eq!(adv.rounds_released(), 1, "stopped after the first decline");
        assert!(!adv.ran_full_course());
        // Lazy pays the short [0,1) plus the long at its deadline.
        // Span = 1 + φ.
        assert!((out.span.get() - (1.0 + phi())).abs() < 1e-9);
        // OPT: start both at 0 → φ. Ratio = (φ+1)/φ = φ.
        let presc = adv.prescribed_schedule(&out.instance);
        let ratio = out.span.ratio(presc.span(&out.instance));
        assert!(
            (ratio - phi()).abs() < 1e-9,
            "golden-ratio branch, got {ratio}"
        );
    }

    #[test]
    fn ratio_approaches_phi_with_rounds() {
        let mut prev = 0.0;
        for n in [2, 5, 20, 100] {
            let mut adv = CvAdversary::new(n);
            let out = run(&mut adv, EagerTest);
            let presc = adv.prescribed_schedule(&out.instance);
            let ratio = out.span.ratio(presc.span(&out.instance));
            assert!(ratio >= prev - 1e-12, "ratio should be nondecreasing in n");
            prev = ratio;
        }
        assert!(
            (prev - phi()).abs() < 0.02,
            "n=100 should be within 2% of φ, got {prev}"
        );
    }

    #[test]
    fn phi_value() {
        assert!((phi() - 1.618_033_988_749_895).abs() < 1e-15);
        // φ² = φ + 1, the identity the construction leans on.
        assert!((phi() * phi() - (phi() + 1.0)).abs() < 1e-12);
    }
}
