//! Tightness instances from the paper (static constructions).
//!
//! * [`fig2_batch_tightness`] — Figure 2: forces the Batch scheduler to a
//!   ratio arbitrarily close to `2μ` (Theorem 3.4, lower-bound side).
//! * [`fig3_batch_plus_tightness`] — Figure 3: forces Batch+ to a ratio
//!   arbitrarily close to `μ+1` (Theorem 3.5, tightness side).
//!
//! Each constructor returns the instance together with the paper's
//! prescribed near-optimal schedule (validated feasible), whose span upper
//! bounds `span_min` — exactly how the paper derives the ratios.

use fjs_core::job::{Instance, Job};
use fjs_core::schedule::Schedule;
use fjs_core::time::{Dur, Time};

/// A static instance paired with the paper's prescribed near-optimal
/// schedule.
#[derive(Clone, Debug)]
pub struct TightnessInstance {
    /// The adversarial instance.
    pub instance: Instance,
    /// The paper's explicit good schedule (feasible; its span ≥ `span_min`).
    pub prescribed: Schedule,
    /// Cached span of the prescribed schedule.
    pub prescribed_span: Dur,
}

impl TightnessInstance {
    pub(crate) fn new(instance: Instance, prescribed: Schedule) -> Self {
        prescribed
            .validate(&instance)
            .expect("prescribed schedule must be feasible by construction");
        let prescribed_span = prescribed.span(&instance);
        TightnessInstance {
            instance,
            prescribed,
            prescribed_span,
        }
    }
}

/// The Figure 2 instance (`Batch` lower bound `2μ`).
///
/// * group 1: `m` short jobs, laxity 0, length 1, the `i`-th arriving at
///   `2(i−1)μ`;
/// * group 2: `m` short jobs, laxity `μ−ε`, length 1, the `i`-th arriving
///   at `2(i−1)μ + ε`;
/// * group 3: `2m` long jobs of length `μ`, all with starting deadline
///   `2mμ`, the `i`-th arriving at `(i−1)μ`.
///
/// Batch pairs each short job with one long job per iteration, inducing
/// span `2mμ`; the prescribed schedule (shorts at arrival, longs stacked at
/// their common deadline) has span `m(1+ε) + μ`.
///
/// # Panics
/// Panics unless `m ≥ 1`, `μ > 1` and `0 < ε < min(1, μ)`.
pub fn fig2_batch_tightness(m: usize, mu: f64, eps: f64) -> TightnessInstance {
    assert!(m >= 1, "need at least one round");
    assert!(mu > 1.0, "μ must exceed 1, got {mu}");
    assert!(
        eps > 0.0 && eps < 1.0 && eps < mu,
        "need 0 < ε < min(1, μ), got {eps}"
    );

    let mut jobs = Vec::with_capacity(4 * m);
    // Group 1: rigid shorts.
    for i in 0..m {
        let a = 2.0 * i as f64 * mu;
        jobs.push(Job::adp(a, a, 1.0));
    }
    // Group 2: shorts with laxity μ−ε.
    for i in 0..m {
        let a = 2.0 * i as f64 * mu + eps;
        jobs.push(Job::adp(a, a + (mu - eps), 1.0));
    }
    // Group 3: longs sharing deadline 2mμ.
    let common_deadline = 2.0 * m as f64 * mu;
    for i in 0..(2 * m) {
        let a = i as f64 * mu;
        jobs.push(Job::adp(a, common_deadline, mu));
    }
    let instance = Instance::new(jobs);

    // Prescribed: shorts at arrival, longs at the common deadline.
    let mut prescribed = Schedule::with_len(instance.len());
    for (id, job) in instance.iter() {
        if job.length() == Dur::new(mu) {
            prescribed.set_start(id, Time::new(common_deadline));
        } else {
            prescribed.set_start(id, job.arrival());
        }
    }
    TightnessInstance::new(instance, prescribed)
}

/// The Figure 3 instance (`Batch+` tightness `μ+1`).
///
/// * `m` short jobs, laxity 0, length 1, the `i`-th arriving at
///   `(i−1)(μ+1)`;
/// * `m` long jobs of length `μ`, all with starting deadline `m(μ+1)`, the
///   `i`-th arriving at `(i−1)(μ+1) + (1−ε)`.
///
/// Batch+ starts each long job immediately (it arrives during the short
/// flag's active interval), inducing span `m(μ+1−ε)`; the prescribed
/// schedule has span `m + μ`.
///
/// # Panics
/// Panics unless `m ≥ 1`, `μ > 1` and `0 < ε < 1`.
pub fn fig3_batch_plus_tightness(m: usize, mu: f64, eps: f64) -> TightnessInstance {
    assert!(m >= 1, "need at least one round");
    assert!(mu > 1.0, "μ must exceed 1, got {mu}");
    assert!(eps > 0.0 && eps < 1.0, "need 0 < ε < 1, got {eps}");

    let mut jobs = Vec::with_capacity(2 * m);
    for i in 0..m {
        let a = i as f64 * (mu + 1.0);
        jobs.push(Job::adp(a, a, 1.0));
    }
    let common_deadline = m as f64 * (mu + 1.0);
    for i in 0..m {
        let a = i as f64 * (mu + 1.0) + (1.0 - eps);
        jobs.push(Job::adp(a, common_deadline, mu));
    }
    let instance = Instance::new(jobs);

    let mut prescribed = Schedule::with_len(instance.len());
    for (id, job) in instance.iter() {
        if job.length() == Dur::new(mu) {
            prescribed.set_start(id, Time::new(common_deadline));
        } else {
            prescribed.set_start(id, job.arrival());
        }
    }
    TightnessInstance::new(instance, prescribed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::time::dur;

    #[test]
    fn fig2_shapes() {
        let t = fig2_batch_tightness(3, 4.0, 1e-3);
        assert_eq!(t.instance.len(), 4 * 3);
        assert_eq!(t.instance.mu(), Some(4.0));
        // Prescribed span = m(1+ε) + μ.
        let expect = 3.0 * (1.0 + 1e-3) + 4.0;
        assert!((t.prescribed_span.get() - expect).abs() < 1e-9);
    }

    #[test]
    fn fig3_shapes() {
        let t = fig3_batch_plus_tightness(5, 3.0, 1e-3);
        assert_eq!(t.instance.len(), 2 * 5);
        assert_eq!(t.instance.mu(), Some(3.0));
        // Prescribed span = m + μ.
        assert_eq!(t.prescribed_span, dur(5.0 + 3.0));
    }

    #[test]
    fn fig2_prescribed_is_feasible_for_all_sizes() {
        for m in [1, 2, 8] {
            for mu in [1.5, 2.0, 8.0] {
                let t = fig2_batch_tightness(m, mu, 1e-4);
                assert!(t.prescribed.validate(&t.instance).is_ok());
            }
        }
    }

    #[test]
    #[should_panic(expected = "μ must exceed 1")]
    fn fig3_rejects_mu_of_one() {
        let _ = fig3_batch_plus_tightness(2, 1.0, 0.5);
    }
}
