//! Lower-bound constructions for the **uniform-jobs** regime (`μ = 1`,
//! every length equal) from the successor paper (Liu, Khuller & Tang,
//! *Online Span Minimization for Flexible Uniform Jobs*). They are the
//! counterparts of the guarantees carried by the `fjs-schedulers::uniform`
//! family, normalized to unit length (`p = 1`; everything scales):
//!
//! * [`UnitTrapAdversary`] — an **adaptive** environment punishing early
//!   commitment: each round releases one unit job with laxity `L ≥ 1`; the
//!   moment the scheduler starts it at `s` with `s + 1` still inside the
//!   window, a **rigid trap** of length 1 is released at `s + 1`. The
//!   online player pays 2 per trapped round while the prescribed schedule
//!   stacks the flexible job *onto* the trap's slot and pays 1 — so a
//!   scheduler trapped every round (Eager, UnitGreedy) is forced to ratio
//!   exactly 2. Deadline-players (Lazy, Batch+, UnitAligned, masked
//!   Doubler) escape every trap and the adversary honestly reports a
//!   forced ratio of 1 for them ([`UnitTrapAdversary::claimed_forced_ratio`]
//!   is computed from the realized trap/escape outcome, never asserted a
//!   priori); *their* cost of escaping is what the static
//!   [`uniform_endfit_tightness`] staircase charges instead.
//! * [`uniform_aligned_tightness`] — unit-length collapse of the seed
//!   paper's Figure 3 staircase: `m` rigid units at even times interleaved
//!   with `m` flexible units arriving `ε` before each rigid slot ends,
//!   all sharing deadline `2m`. Aligned batching (UnitAligned ≡ Batch+)
//!   starts each flexible job mid-flag and pays `m(2 − ε)` against a
//!   prescribed `m + 1` — ratio `→ 2`, matching `μ + 1` at `μ = 1`.
//! * [`uniform_greedy_tightness`] — `groups` batches of `g` staggered
//!   arrivals sharing one feasible meeting point at each group's last
//!   window. Arrival-greedy play tiles `[0, groups·g)` while the
//!   prescribed schedule stacks each group into one slot: ratio exactly
//!   `g = 1 + λ` (normalized laxity `λ = g − 1`), so UnitGreedy's
//!   `(1 + λ)` guarantee is *exactly* tight at integer `λ`.
//! * [`uniform_endfit_tightness`] — `n` unit jobs arriving together with
//!   deadlines `0, 1, …, n − 1`. End-of-window play smears them across
//!   `[0, n)` while the prescribed schedule runs all of them at once:
//!   ratio exactly `n = 1 + λ`, the mirror tightness for UnitEndfit
//!   (and the price Lazy pays for evading the trap adversary).
//!
//! The static constructors return [`TightnessInstance`]s (prescribed
//! schedules validated feasible at construction); the trap adversary
//! implements [`Environment`], so any
//! [`fjs_core::sim::OnlineScheduler`] can be thrown at it via
//! [`fjs_core::sim::run`], and
//! [`UnitTrapAdversary::prescribed_schedule`] certifies the measured
//! ratio the same way [`crate::NcAdversary`] does.

use fjs_core::job::{Instance, Job, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::sim::{Clairvoyance, Environment, JobSpec, LengthRuling, World};
use fjs_core::time::{Dur, Time};

use crate::tightness::TightnessInstance;

/// One round of the trap adversary.
#[derive(Clone, Debug)]
struct TrapRound {
    /// The round's flexible unit job.
    flex: JobId,
    /// Its starting deadline (release + laxity).
    deadline: Time,
    /// Where the scheduler started it, once observed.
    start: Option<Time>,
    /// The rigid trap job and its release instant, if this round trapped.
    trap: Option<(JobId, Time)>,
}

/// The adaptive **unit trap** adversary (see the module docs).
///
/// Plays `rounds` rounds. Round `i` releases one *adaptive* unit job with
/// laxity `L`; when the scheduler starts it at `s`, the adversary assigns
/// length 1 and — iff `s + 1` still fits inside the job's window — releases
/// a rigid unit trap at `s + 1`. Trapped rounds cost the online player 2
/// and the prescribed schedule 1; escaped rounds cost both exactly 1 (the
/// prescribed schedule copies the observed start), so the realized ratio
/// equals [`claimed_forced_ratio`](UnitTrapAdversary::claimed_forced_ratio)
/// `= (2t + e)/(t + e)` for `t` trapped / `e` escaped rounds — a certified
/// lower bound on the scheduler's competitive ratio over uniform
/// instances.
#[derive(Clone, Debug)]
pub struct UnitTrapAdversary {
    rounds: usize,
    laxity: Dur,
    rounds_log: Vec<TrapRound>,
    /// Whether the next release is a trap (decided in `rule_length`).
    pending_trap: bool,
    next_release: Option<Time>,
}

impl UnitTrapAdversary {
    /// Creates a trap adversary playing `rounds` rounds with per-job
    /// laxity `laxity`.
    ///
    /// # Panics
    /// Panics unless `rounds ≥ 1` and `laxity ≥ 1` (with less than one
    /// unit of slack no trap can ever fit and the game is vacuous).
    pub fn new(rounds: usize, laxity: f64) -> Self {
        assert!(rounds >= 1, "need at least one round");
        assert!(
            laxity >= 1.0,
            "need laxity ≥ 1 for a trap to fit, got {laxity}"
        );
        UnitTrapAdversary {
            rounds,
            laxity: Dur::new(laxity),
            rounds_log: Vec::new(),
            pending_trap: false,
            next_release: Some(Time::ZERO),
        }
    }

    /// Number of rounds the adversary was configured to play.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of rounds actually played (released) so far.
    pub fn rounds_played(&self) -> usize {
        self.rounds_log.len()
    }

    /// Rounds in which the scheduler committed early and was trapped.
    pub fn trapped(&self) -> usize {
        self.rounds_log.iter().filter(|r| r.trap.is_some()).count()
    }

    /// Rounds in which the scheduler started at (or past `window − 1`
    /// before) its deadline and escaped.
    pub fn escaped(&self) -> usize {
        self.rounds_log
            .iter()
            .filter(|r| r.start.is_some() && r.trap.is_none())
            .count()
    }

    /// The ratio this play certifiably forced: `(2t + e)/(t + e)` over the
    /// completed rounds (1.0 if none completed). The online span is exactly
    /// `2t + e` and the prescribed span exactly `t + e`, so the realized
    /// ratio *equals* this claim — tests assert the equality bit-exactly.
    pub fn claimed_forced_ratio(&self) -> f64 {
        let t = self.trapped() as f64;
        let e = self.escaped() as f64;
        if t + e == 0.0 {
            1.0
        } else {
            (2.0 * t + e) / (t + e)
        }
    }

    /// The adversary's counter-schedule for the materialized instance:
    /// trapped rounds stack the flexible job onto the trap's slot (one unit
    /// of busy time instead of the online player's two); escaped rounds
    /// copy the scheduler's own start.
    ///
    /// # Panics
    /// Panics if called before the run finished (a round without an
    /// observed start).
    pub fn prescribed_schedule(&self, instance: &Instance) -> Schedule {
        let mut schedule = Schedule::with_len(instance.len());
        for round in &self.rounds_log {
            match round.trap {
                Some((trap_id, trap_at)) => {
                    // `trap_at = s + 1 ≤ deadline`, so the flexible job may
                    // legally start together with the rigid trap.
                    schedule.set_start(round.flex, trap_at);
                    schedule.set_start(trap_id, trap_at);
                }
                None => {
                    let start = round.start.expect("round not completed");
                    schedule.set_start(round.flex, start);
                }
            }
        }
        schedule
    }
}

impl Environment for UnitTrapAdversary {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::NonClairvoyant
    }

    fn next_release_time(&mut self, _world: &World) -> Option<Time> {
        self.next_release
    }

    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        debug_assert_eq!(Some(now), self.next_release);
        if self.pending_trap {
            // The trap: rigid (deadline = arrival), unit length, dropped
            // exactly one unit after the flexible job's observed start.
            self.pending_trap = false;
            let trap_id = JobId(world.num_jobs() as u32);
            let round = self
                .rounds_log
                .last_mut()
                .expect("trap follows a flexible round");
            round.trap = Some((trap_id, now));
            self.next_release = (self.rounds_log.len() < self.rounds).then(|| now + Dur::new(2.0));
            vec![JobSpec::fixed(now, Dur::new(1.0))]
        } else {
            let flex = JobId(world.num_jobs() as u32);
            self.rounds_log.push(TrapRound {
                flex,
                deadline: now + self.laxity,
                start: None,
                trap: None,
            });
            // The next move depends on where the scheduler starts this job;
            // decided in `rule_length`.
            self.next_release = None;
            vec![JobSpec::adaptive(now + self.laxity)]
        }
    }

    fn rule_length(
        &mut self,
        id: JobId,
        started_at: Time,
        _now: Time,
        _world: &World,
    ) -> LengthRuling {
        let rounds = self.rounds;
        let round = self
            .rounds_log
            .iter_mut()
            .rev()
            .find(|r| r.flex == id)
            .expect("ruling on a job we released");
        if round.start.is_none() {
            round.start = Some(started_at);
            let trap_at = started_at + Dur::new(1.0);
            if trap_at <= round.deadline {
                // Early commitment: spring the trap at the job's completion.
                self.pending_trap = true;
                self.next_release = Some(trap_at);
            } else {
                // Escaped (started within one unit of the deadline). Next
                // round starts one unit after this round's busy slot ends.
                self.next_release =
                    (self.rounds_log.len() < rounds).then(|| started_at + Dur::new(2.0));
            }
        }
        LengthRuling::Assign(Dur::new(1.0))
    }
}

/// The unit-length collapse of the seed paper's Figure 3 staircase,
/// driving **aligned batching** (UnitAligned ≡ Batch+) to ratio `→ 2`.
///
/// Round `i ∈ 0..m` releases a rigid unit job at `2i` and a flexible unit
/// job at `2i + 1 − ε`; every flexible job shares the starting deadline
/// `2m`. Aligned batching flags each rigid job at its arrival and — the
/// door being open while the flag runs — starts the flexible job the
/// moment it arrives, paying `2 − ε` per round (span `m(2 − ε)`). The
/// prescribed schedule runs rigids at arrival and stacks every flexible
/// job at the common deadline: span `m + 1`, hence ratio
/// `m(2 − ε)/(m + 1) → 2`.
///
/// # Panics
/// Panics unless `m ≥ 1` and `0 < ε < 1`.
pub fn uniform_aligned_tightness(m: usize, eps: f64) -> TightnessInstance {
    assert!(m >= 1, "need at least one round");
    assert!(eps > 0.0 && eps < 1.0, "need 0 < ε < 1, got {eps}");

    let common_deadline = 2.0 * m as f64;
    let mut jobs = Vec::with_capacity(2 * m);
    for i in 0..m {
        let a = 2.0 * i as f64;
        jobs.push(Job::adp(a, a, 1.0)); // rigid
        jobs.push(Job::adp(a + 1.0 - eps, common_deadline, 1.0)); // flexible
    }
    let instance = Instance::new(jobs);

    let mut prescribed = Schedule::with_len(instance.len());
    for (id, job) in instance.iter() {
        if job.laxity() == Dur::ZERO {
            prescribed.set_start(id, job.arrival());
        } else {
            prescribed.set_start(id, Time::new(common_deadline));
        }
    }
    TightnessInstance::new(instance, prescribed)
}

/// Grouped staggered arrivals forcing **arrival-greedy** play (UnitGreedy,
/// Eager) to ratio exactly `g = 1 + λ` — the `(1 + λ)` guarantee is tight.
///
/// Job `k ∈ 0..groups·g` arrives at `k` with starting deadline
/// `(⌊k/g⌋ + 1)·g − 1`: each group of `g` consecutive arrivals shares one
/// feasible meeting point at its last member's (rigid) window. Greedy play
/// tiles `[0, groups·g)` (span `groups·g`); the prescribed schedule stacks
/// each group at its meeting point (span `groups`). Normalized laxity is
/// `λ = g − 1`, so the ratio is exactly `g = 1 + λ`. UnitEndfit plays this
/// instance *optimally* (every deadline is a meeting point) — the two
/// `(1 + λ)` algorithms have disjoint worst cases.
///
/// # Panics
/// Panics unless `groups ≥ 1` and `g ≥ 1`.
pub fn uniform_greedy_tightness(groups: usize, g: usize) -> TightnessInstance {
    assert!(groups >= 1, "need at least one group");
    assert!(g >= 1, "need at least one job per group");

    let n = groups * g;
    let mut jobs = Vec::with_capacity(n);
    for k in 0..n {
        let deadline = ((k / g + 1) * g - 1) as f64;
        jobs.push(Job::adp(k as f64, deadline, 1.0));
    }
    let instance = Instance::new(jobs);

    let mut prescribed = Schedule::with_len(instance.len());
    for (id, job) in instance.iter() {
        prescribed.set_start(id, job.deadline()); // the group meeting point
    }
    TightnessInstance::new(instance, prescribed)
}

/// A common-arrival deadline staircase forcing **end-of-window** play
/// (UnitEndfit, Lazy) to ratio exactly `n = 1 + λ`.
///
/// All `n` unit jobs arrive at 0; job `i` has starting deadline `i`.
/// End-of-window play smears them across `[0, n)` (span `n`); the
/// prescribed schedule runs all of them concurrently at 0 (span 1).
/// Normalized laxity is `λ = n − 1`, so the ratio is exactly `1 + λ` —
/// and this is precisely the price Lazy-style players pay for escaping
/// the [`UnitTrapAdversary`]. UnitGreedy plays this instance optimally.
///
/// # Panics
/// Panics unless `n ≥ 1`.
pub fn uniform_endfit_tightness(n: usize) -> TightnessInstance {
    assert!(n >= 1, "need at least one job");

    let jobs: Vec<Job> = (0..n).map(|i| Job::adp(0.0, i as f64, 1.0)).collect();
    let instance = Instance::new(jobs);

    let mut prescribed = Schedule::with_len(instance.len());
    for (id, _job) in instance.iter() {
        prescribed.set_start(id, Time::ZERO);
    }
    TightnessInstance::new(instance, prescribed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;
    use fjs_core::sim::run;
    use fjs_schedulers::{BatchPlus, Eager, Lazy, UnitAligned, UnitEndfit, UnitGreedy};

    #[test]
    fn trap_forces_ratio_two_against_arrival_greedy_play() {
        for sched in [
            Box::new(Eager) as Box<dyn OnlineScheduler>,
            Box::new(UnitGreedy),
        ] {
            let mut adv = UnitTrapAdversary::new(4, 3.0);
            let out = run(&mut adv, sched);
            assert!(out.is_feasible());
            assert_eq!(out.instance.uniform_length(), Some(dur(1.0)));
            assert_eq!((adv.trapped(), adv.escaped()), (4, 0));
            assert_eq!(out.span, dur(8.0)); // 2 per trapped round

            let presc = adv.prescribed_schedule(&out.instance);
            assert!(presc.validate(&out.instance).is_ok());
            assert_eq!(presc.span(&out.instance), dur(4.0));
            let ratio = out.span.ratio(presc.span(&out.instance));
            assert_eq!(ratio, 2.0);
            assert_eq!(ratio, adv.claimed_forced_ratio());
        }
    }

    #[test]
    fn trap_lets_deadline_players_escape_honestly() {
        // Deadline-players never leave a unit of slack behind a start, so
        // no trap fits; the adversary's claim degrades to 1 (honest).
        for sched in [
            Box::new(Lazy) as Box<dyn OnlineScheduler>,
            Box::new(UnitEndfit),
            Box::new(BatchPlus::new()),
            Box::new(UnitAligned::new()),
        ] {
            let mut adv = UnitTrapAdversary::new(4, 3.0);
            let out = run(&mut adv, sched);
            assert!(out.is_feasible());
            assert_eq!((adv.trapped(), adv.escaped()), (0, 4));
            let presc = adv.prescribed_schedule(&out.instance);
            assert!(presc.validate(&out.instance).is_ok());
            let ratio = out.span.ratio(presc.span(&out.instance));
            assert_eq!(ratio, 1.0);
            assert_eq!(adv.claimed_forced_ratio(), 1.0);
        }
    }

    #[test]
    fn trap_rounds_are_isolated_in_time() {
        // The certified accounting relies on rounds never touching: online
        // busy time is exactly 2t + e and prescribed exactly t + e.
        let mut adv = UnitTrapAdversary::new(7, 2.0);
        let out = run(&mut adv, Eager);
        assert_eq!(adv.rounds_played(), 7);
        assert_eq!(out.span, dur(2.0 * 7.0));
        assert_eq!(
            adv.prescribed_schedule(&out.instance).span(&out.instance),
            dur(7.0)
        );
    }

    #[test]
    #[should_panic(expected = "laxity ≥ 1")]
    fn trap_rejects_subunit_laxity() {
        let _ = UnitTrapAdversary::new(3, 0.5);
    }

    #[test]
    fn aligned_tightness_approaches_two() {
        let m = 8;
        let eps = 1e-3;
        let t = uniform_aligned_tightness(m, eps);
        assert_eq!(t.instance.uniform_length(), Some(dur(1.0)));
        assert_eq!(t.prescribed_span, dur(m as f64 + 1.0));
        for sched in [
            Box::new(UnitAligned::new()) as Box<dyn OnlineScheduler>,
            Box::new(BatchPlus::new()),
        ] {
            let out = run_static(&t.instance, Clairvoyance::NonClairvoyant, sched);
            assert!(out.is_feasible());
            // Span m(2 − ε), ratio m(2 − ε)/(m + 1) → 2.
            assert!((out.span.get() - m as f64 * (2.0 - eps)).abs() < 1e-9);
            let ratio = out.span.ratio(t.prescribed_span);
            assert!(
                ratio > 1.77,
                "m = {m} should already force > 1.77, got {ratio}"
            );
        }
    }

    #[test]
    fn greedy_tightness_is_exactly_one_plus_lambda() {
        let (groups, g) = (3, 4);
        let t = uniform_greedy_tightness(groups, g);
        assert_eq!(t.instance.uniform_laxity_ratio(), Some((g - 1) as f64));
        assert_eq!(t.prescribed_span, dur(groups as f64));
        for sched in [
            Box::new(Eager) as Box<dyn OnlineScheduler>,
            Box::new(UnitGreedy),
        ] {
            let out = run_static(&t.instance, Clairvoyance::NonClairvoyant, sched);
            assert!(out.is_feasible());
            assert_eq!(out.span, dur((groups * g) as f64));
            assert_eq!(out.span.ratio(t.prescribed_span), g as f64); // = 1 + λ
        }
        // The mirror algorithm plays it optimally.
        let out = run_static(&t.instance, Clairvoyance::NonClairvoyant, UnitEndfit);
        assert_eq!(out.span.ratio(t.prescribed_span), 1.0);
    }

    #[test]
    fn endfit_tightness_is_exactly_one_plus_lambda() {
        let n = 6;
        let t = uniform_endfit_tightness(n);
        assert_eq!(t.instance.uniform_laxity_ratio(), Some((n - 1) as f64));
        assert_eq!(t.prescribed_span, dur(1.0));
        for sched in [
            Box::new(Lazy) as Box<dyn OnlineScheduler>,
            Box::new(UnitEndfit),
        ] {
            let out = run_static(&t.instance, Clairvoyance::NonClairvoyant, sched);
            assert!(out.is_feasible());
            assert_eq!(out.span, dur(n as f64));
            assert_eq!(out.span.ratio(t.prescribed_span), n as f64); // = 1 + λ
        }
        // The mirror algorithm plays it optimally.
        let out = run_static(&t.instance, Clairvoyance::NonClairvoyant, UnitGreedy);
        assert_eq!(out.span.ratio(t.prescribed_span), 1.0);
    }
}
