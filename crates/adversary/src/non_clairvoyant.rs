//! The **Theorem 3.3 adversary**: an adaptive environment forcing every
//! deterministic non-clairvoyant scheduler towards ratio `μ`.
//!
//! The construction (Figure 1) proceeds in iterations. Iteration `i`
//! releases `n_i` jobs at time `T_i` with exponentially increasing laxities
//! `α^1, α^2, …`. Every job is *adaptive*: its length is assigned **one
//! time unit after it starts** (at which point the shortest admissible
//! length, 1, would complete it immediately). As long as the iteration's
//! *concurrency* — the number of its jobs running simultaneously — stays at
//! most a threshold `c_i`, every job is assigned length 1; the iteration's
//! span is then at least `n_i / c_i` (Lemma 3.1) while OPT could have run
//! everything together. The moment concurrency exceeds `c_i`, the running
//! job with the **largest laxity** is *earmarked* to receive length `μ`,
//! every other job gets length 1, and iteration `i+1` is released exactly at
//! the earmark's completion. Earmarked jobs from all iterations remain
//! startable at the final release time (Lemma 3.2 — asserted at runtime
//! here, see the scaling note), so OPT stacks them into a single `μ` window
//! while the online scheduler paid `μ` per iteration.
//!
//! # Scaling substitution (see DESIGN.md §7)
//!
//! The paper's counts `n_i = 2^(2^(2k−i+1))` are astronomically large; they
//! exist to make *every* early-termination branch of the case analysis
//! yield a huge ratio simultaneously. This implementation keeps the
//! adversary's full decision logic but takes the per-iteration counts,
//! thresholds and the laxity base as parameters, and *verifies* (rather
//! than derives from magnitude) the property Lemma 3.2 needs: that every
//! earmarked job's starting deadline is at least the final release time.
//! [`NcAdversary::prescribed_schedule`] then realizes the paper's optimal
//! counter-schedule on the materialized instance.

use fjs_core::job::{Instance, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::sim::{Clairvoyance, Environment, JobSpec, LengthRuling, World};
use fjs_core::time::{Dur, Time};

/// Parameters of the scaled Theorem 3.3 construction.
#[derive(Clone, Debug)]
pub struct NcAdversaryParams {
    /// Target max/min length ratio `μ > 1` (the earmark length; all other
    /// jobs have length 1).
    pub mu: f64,
    /// Number of earmarking iterations `k` (the final `(k+1)`-th iteration
    /// releases fixed length-1 jobs).
    pub iterations: usize,
    /// Jobs released per iteration `n_i` (`iterations + 1` entries; the
    /// paper uses doubly-exponentially decreasing counts).
    pub counts: Vec<usize>,
    /// Concurrency thresholds `c_i` (one per earmarking iteration; the
    /// paper uses `√n_i`).
    pub thresholds: Vec<usize>,
    /// Laxity base `α > μ + 1`; job `j` of an iteration has laxity `α^j`
    /// for `j ≤ laxity_cap_exp` and `α^cap + 2(j − cap)` beyond (strictly
    /// increasing, but bounded so that all event times stay well inside
    /// `f64` integer resolution — `t + 1` must remain representable).
    pub alpha: f64,
    /// Exponent cap keeping laxities ≲ 10¹² (the paper's unbounded
    /// exponents only serve Lemma 3.2, which we assert at runtime instead).
    pub laxity_cap_exp: u32,
}

impl NcAdversaryParams {
    /// A balanced configuration: `k` iterations of `n` jobs each with
    /// threshold `√n`, `α = μ + 2`.
    ///
    /// # Panics
    /// Panics unless `mu > 1`, `k ≥ 1` and `n ≥ 4`.
    pub fn uniform(mu: f64, k: usize, n: usize) -> Self {
        assert!(mu > 1.0, "μ must exceed 1, got {mu}");
        assert!(k >= 1, "need at least one iteration");
        assert!(n >= 4, "need at least 4 jobs per iteration");
        let threshold = (n as f64).sqrt().floor() as usize;
        NcAdversaryParams {
            mu,
            iterations: k,
            counts: vec![n; k + 1],
            thresholds: vec![threshold.max(1); k],
            alpha: mu + 2.0,
            laxity_cap_exp: cap_for(mu + 2.0),
        }
    }

    /// The paper's literal doubly-exponential counts
    /// `n_i = 2^(2^(2k−i+1))`, feasible only for `k = 1`
    /// (`k = 1` → counts `[16, 4]`, threshold `[4]`).
    ///
    /// # Panics
    /// Panics if `k > 1` (counts overflow anything reasonable) or `mu <= 1`.
    pub fn literal(mu: f64, k: usize) -> Self {
        assert!(mu > 1.0, "μ must exceed 1, got {mu}");
        assert!(
            k == 1,
            "the literal construction is only materializable for k = 1"
        );
        let counts: Vec<usize> = (1..=k + 1)
            .map(|i| 1usize << (1usize << (2 * k - i + 1)))
            .collect();
        let thresholds: Vec<usize> = counts[..k]
            .iter()
            .map(|&n| (n as f64).sqrt() as usize)
            .collect();
        NcAdversaryParams {
            mu,
            iterations: k,
            counts,
            thresholds,
            alpha: mu + 2.0,
            laxity_cap_exp: cap_for(mu + 2.0),
        }
    }

    fn validate(&self) {
        assert!(self.mu > 1.0, "μ must exceed 1");
        assert!(
            self.alpha > self.mu + 1.0,
            "need α > μ + 1 (paper requirement)"
        );
        assert_eq!(
            self.counts.len(),
            self.iterations + 1,
            "counts: one per iteration plus final"
        );
        assert_eq!(
            self.thresholds.len(),
            self.iterations,
            "thresholds: one per earmarking iteration"
        );
        assert!(
            self.counts.iter().all(|&n| n >= 2),
            "each iteration needs ≥ 2 jobs"
        );
        assert!(
            self.thresholds
                .iter()
                .zip(&self.counts)
                .all(|(&c, &n)| c >= 1 && c < n),
            "thresholds must satisfy 1 ≤ c_i < n_i"
        );
    }
}

/// Largest exponent keeping `alpha^cap` at or below ~10¹².
fn cap_for(alpha: f64) -> u32 {
    ((12.0 * std::f64::consts::LN_10) / alpha.ln())
        .floor()
        .max(2.0) as u32
}

/// Progress of one adversary iteration.
#[derive(Clone, Debug)]
struct IterationState {
    /// Release time `T_i`.
    release_time: Time,
    /// Ids of this iteration's jobs (contiguous, release order).
    first_id: u32,
    count: u32,
    /// Whether concurrency has exceeded the threshold.
    crossed: bool,
    /// The earmarked job, once designated.
    earmark: Option<JobId>,
}

/// The adaptive adversary. Implements [`Environment`]; run any
/// non-clairvoyant [`fjs_core::sim::OnlineScheduler`] against it with
/// [`fjs_core::sim::run`].
#[derive(Clone, Debug)]
pub struct NcAdversary {
    params: NcAdversaryParams,
    iters: Vec<IterationState>,
    /// Release time of the next iteration, once known.
    next_release: Option<Time>,
    /// Index (0-based) of the next iteration to release.
    next_iter: usize,
}

impl NcAdversary {
    /// Creates the adversary.
    ///
    /// # Panics
    /// Panics if the parameters are inconsistent (see
    /// [`NcAdversaryParams`] field docs).
    pub fn new(params: NcAdversaryParams) -> Self {
        params.validate();
        NcAdversary {
            params,
            iters: Vec::new(),
            next_release: Some(Time::ZERO),
            next_iter: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &NcAdversaryParams {
        &self.params
    }

    /// Iteration index (0-based) a job id belongs to, if released.
    fn iteration_of(&self, id: JobId) -> Option<usize> {
        self.iters
            .iter()
            .position(|it| id.0 >= it.first_id && id.0 < it.first_id + it.count)
    }

    /// The laxity of job `j` (1-based within its iteration): `α^j`, capped
    /// with a linear (gap-2) extension so laxities stay strictly increasing
    /// while all event times remain far below `f64` integer resolution.
    fn laxity(&self, j: u32) -> Dur {
        let cap = self.params.laxity_cap_exp;
        if j <= cap {
            Dur::new(self.params.alpha.powi(j as i32))
        } else {
            Dur::new(self.params.alpha.powi(cap as i32) + 2.0 * f64::from(j - cap))
        }
    }

    /// Number of currently running jobs belonging to iteration `it`.
    fn concurrency(&self, it: usize, world: &World) -> usize {
        let iter = &self.iters[it];
        world
            .running()
            .filter(|id| id.0 >= iter.first_id && id.0 < iter.first_id + iter.count)
            .count()
    }

    /// All earmarked jobs designated so far (iteration order).
    pub fn earmarks(&self) -> Vec<JobId> {
        self.iters.iter().filter_map(|it| it.earmark).collect()
    }

    /// Number of iterations actually released.
    pub fn iterations_released(&self) -> usize {
        self.iters.len()
    }

    /// The release times `T_1, T_2, …` of the released iterations.
    pub fn release_times(&self) -> Vec<Time> {
        self.iters.iter().map(|it| it.release_time).collect()
    }

    /// The paper's counter-schedule for the materialized instance: every
    /// earmarked job and every job of the final released iteration starts
    /// at the final release time; every other job starts at its arrival.
    ///
    /// Returns `Err` with the offending job if an earmark is no longer
    /// startable at the final release time (possible only if the scheduler
    /// delayed starts beyond the capped laxities — the Lemma 3.2 runtime
    /// check described in the module docs).
    pub fn prescribed_schedule(&self, instance: &Instance) -> Result<Schedule, JobId> {
        let last = self.iters.last().expect("at least one iteration released");
        let t_last = last.release_time;
        let earmarks = self.earmarks();
        let mut schedule = Schedule::with_len(instance.len());
        for (id, job) in instance.iter() {
            let in_last_iter = id.0 >= last.first_id && id.0 < last.first_id + last.count;
            let stacked = in_last_iter || earmarks.contains(&id);
            if stacked {
                if !(job.arrival() <= t_last && t_last <= job.deadline()) {
                    return Err(id);
                }
                schedule.set_start(id, t_last);
            } else {
                schedule.set_start(id, job.arrival());
            }
        }
        Ok(schedule)
    }
}

impl Environment for NcAdversary {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::NonClairvoyant
    }

    fn next_release_time(&mut self, _world: &World) -> Option<Time> {
        self.next_release
    }

    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        debug_assert_eq!(Some(now), self.next_release);
        let idx = self.next_iter;
        let count = self.params.counts[idx];
        let first_id = world.num_jobs() as u32;
        self.iters.push(IterationState {
            release_time: now,
            first_id,
            count: count as u32,
            crossed: false,
            earmark: None,
        });
        self.next_iter += 1;
        self.next_release = None; // decided when/if this iteration crosses

        let final_iteration = idx == self.params.iterations;
        (1..=count as u32)
            .map(|j| {
                let deadline = now + self.laxity(j);
                if final_iteration {
                    // Paper: the (k+1)-th iteration's jobs are directly
                    // assigned length 1.
                    JobSpec::fixed(deadline, Dur::new(1.0))
                } else {
                    JobSpec::adaptive(deadline)
                }
            })
            .collect()
    }

    fn rule_length(
        &mut self,
        id: JobId,
        started_at: Time,
        now: Time,
        world: &World,
    ) -> LengthRuling {
        let it_idx = self.iteration_of(id).expect("ruling on a job we released");

        if now == started_at {
            // First call: the job just started. This is where the adversary
            // watches the iteration's concurrency (concurrency only
            // increases at starts).
            let iter = &self.iters[it_idx];
            if !iter.crossed
                && self.iters[it_idx].earmark.is_none()
                && it_idx < self.params.iterations
                && self.concurrency(it_idx, world) > self.params.thresholds[it_idx]
            {
                // Concurrency first exceeded the threshold: earmark the
                // running job of this iteration with the largest laxity
                // (= largest id, laxities being nondecreasing in j). Jobs
                // whose length is already committed (possible only in the
                // degenerate float regime below) are not candidates.
                let iter = &self.iters[it_idx];
                let earmark = world
                    .running()
                    .filter(|jid| jid.0 >= iter.first_id && jid.0 < iter.first_id + iter.count)
                    .filter(|jid| world.job(*jid).length().is_none())
                    .max()
                    .expect("the just-started job is always a candidate");
                let em_start = world.job(earmark).start().expect("earmark is running");
                let iter = &mut self.iters[it_idx];
                iter.crossed = true;
                iter.earmark = Some(earmark);
                // Next iteration is released exactly at the earmark's
                // completion.
                if self.next_iter <= self.params.iterations {
                    self.next_release = Some(em_start + Dur::new(self.params.mu));
                }
            }
            // Lengths are assigned one time unit after the start. If the
            // start time is so large that `start + 1` is not representable
            // as a strictly later f64 (sub-ulp regime — only reachable by
            // schedulers that sit on the huge capped laxities), rule
            // immediately: the earmark decision for this job has already
            // been taken above if it was ever going to be.
            let probe = started_at + Dur::new(1.0);
            if probe > started_at {
                return LengthRuling::AskAgainAt(probe);
            }
        }

        // Second call (start + 1): assign the length.
        if self.iters[it_idx].earmark == Some(id) {
            LengthRuling::Assign(Dur::new(self.params.mu))
        } else {
            LengthRuling::Assign(Dur::new(1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::prelude::*;
    use fjs_core::sim::run;

    /// Starts everything the moment it arrives (max concurrency).
    struct EagerTest;
    impl OnlineScheduler for EagerTest {
        fn name(&self) -> String {
            "eager-test".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    /// Starts jobs only at their deadlines (concurrency 1 here).
    struct LazyTest;
    impl OnlineScheduler for LazyTest {
        fn name(&self) -> String {
            "lazy-test".into()
        }
        fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
        fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
            ctx.start(id);
        }
    }

    #[test]
    fn eager_scheduler_gets_earmarked_every_iteration() {
        let params = NcAdversaryParams::uniform(4.0, 2, 16);
        let mut adv = NcAdversary::new(params);
        let out = run(&mut adv, EagerTest);
        assert!(out.is_feasible());
        // Eager blasts concurrency past √16 = 4 instantly in each
        // iteration, so both earmarking iterations fire, plus the final one.
        assert_eq!(adv.iterations_released(), 3);
        assert_eq!(adv.earmarks().len(), 2);
        // Earmarks have length μ, everything else length 1.
        for em in adv.earmarks() {
            assert_eq!(out.instance.job(em).length(), dur(4.0));
        }
        let ones = out
            .instance
            .jobs()
            .iter()
            .filter(|j| j.length() == dur(1.0))
            .count();
        assert_eq!(ones, out.instance.len() - 2);
        // Prescribed counter-schedule is feasible and far cheaper.
        let presc = adv.prescribed_schedule(&out.instance).expect("feasible");
        assert!(presc.validate(&out.instance).is_ok());
        let ratio = out.span.ratio(presc.span(&out.instance));
        assert!(
            ratio > 1.0,
            "adversary must beat the eager scheduler, ratio {ratio}"
        );
    }

    #[test]
    fn low_concurrency_scheduler_stops_after_first_iteration() {
        let params = NcAdversaryParams::uniform(4.0, 2, 16);
        let mut adv = NcAdversary::new(params);
        let out = run(&mut adv, LazyTest);
        assert!(out.is_feasible());
        // Lazy runs one job at a time (laxities are all distinct), so the
        // threshold is never crossed and no further iteration is released.
        assert_eq!(adv.iterations_released(), 1);
        assert!(adv.earmarks().is_empty());
        // All 16 jobs ran for length 1, sequentially: span = 16 ≥ n/c = 4.
        assert_eq!(out.span, dur(16.0));
    }

    #[test]
    fn lemma_3_1_span_bound_without_earmark() {
        // Any scheduler that never crosses c jobs of one iteration must
        // induce span ≥ n/c for that iteration's unit jobs.
        let params = NcAdversaryParams::uniform(2.0, 1, 16);
        let mut adv = NcAdversary::new(params);
        let out = run(&mut adv, LazyTest);
        let threshold = adv.params().thresholds[0] as f64;
        let n = adv.params().counts[0] as f64;
        assert!(out.span.get() >= n / threshold - 1e-9);
    }

    #[test]
    fn literal_k1_construction() {
        let params = NcAdversaryParams::literal(3.0, 1);
        assert_eq!(params.counts, vec![16, 4]);
        assert_eq!(params.thresholds, vec![4]);
        let mut adv = NcAdversary::new(params);
        let out = run(&mut adv, EagerTest);
        assert!(out.is_feasible());
        assert_eq!(adv.iterations_released(), 2);
        assert_eq!(out.instance.len(), 20);
    }

    #[test]
    fn release_times_follow_earmark_completions() {
        let params = NcAdversaryParams::uniform(4.0, 2, 16);
        let mut adv = NcAdversary::new(params);
        let _ = run(&mut adv, EagerTest);
        let times = adv.release_times();
        assert_eq!(times[0], Time::ZERO);
        // Eager starts everything at T_i; earmark starts at T_i and runs μ.
        assert_eq!(times[1], t(4.0));
        assert_eq!(times[2], t(8.0));
    }

    #[test]
    #[should_panic(expected = "α > μ + 1")]
    fn alpha_validation() {
        let mut p = NcAdversaryParams::uniform(4.0, 1, 16);
        p.alpha = 4.5; // ≤ μ + 1
        let _ = NcAdversary::new(p);
    }
}
