//! # fjs-adversary
//!
//! The lower-bound machinery of Ren & Tang (SPAA 2017) as executable code:
//!
//! * [`non_clairvoyant`] — the adaptive Theorem 3.3 adversary (ratio → `μ`
//!   against every deterministic non-clairvoyant scheduler), with the
//!   scaled parameterization documented in DESIGN.md §7;
//! * [`clairvoyant`] — the adaptive Theorem 4.1 adversary (ratio → `φ`
//!   against every deterministic clairvoyant scheduler);
//! * [`tightness`] — the static Figure 2 / Figure 3 instances showing
//!   Batch's `2μ` lower bound and Batch+'s `μ+1` tightness;
//! * [`uniform`] — the successor paper's uniform-jobs (`μ = 1`)
//!   constructions: the adaptive [`UnitTrapAdversary`] (ratio 2 against
//!   early-committing play) and static tightness staircases pinning the
//!   `2` and `1 + λ` guarantees of the `fjs-schedulers` uniform family.
//!
//! Adversaries implement [`fjs_core::sim::Environment`], so any
//! [`fjs_core::sim::OnlineScheduler`] can be thrown at them via
//! [`fjs_core::sim::run`]. Each construction also produces the paper's
//! *prescribed* counter-schedule, whose (validated-feasible) span upper
//! bounds the optimum — making the measured ratio a certified lower bound
//! on the scheduler's competitive ratio.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clairvoyant;
pub mod non_clairvoyant;
pub mod tightness;
pub mod uniform;

pub use clairvoyant::{phi, CvAdversary};
pub use non_clairvoyant::{NcAdversary, NcAdversaryParams};
pub use tightness::{fig2_batch_tightness, fig3_batch_plus_tightness, TightnessInstance};
pub use uniform::{
    uniform_aligned_tightness, uniform_endfit_tightness, uniform_greedy_tightness,
    UnitTrapAdversary,
};
