//! Exact optimal span for small **integer** instances.
//!
//! The paper cites Khandekar et al. for the fact that offline FJS is
//! polynomially solvable; here we only need exact optima as ground truth for
//! validating schedulers on small instances (experiment E10), so we use a
//! transparent search instead of reimplementing the full DP:
//!
//! **Integrality lemma.** For an instance whose arrivals, deadlines and
//! lengths are all integers, some optimal schedule uses only integer start
//! times. *Proof sketch:* fix an optimal schedule and any job `J` not on the
//! integer grid. As a function of `s(J)` (others fixed), the span is
//! piecewise linear with breakpoints only where an endpoint of `J`'s active
//! interval meets an endpoint of another job's interval or `s(J)` hits
//! `a(J)`/`d(J)`. Moving `s(J)` to the nearest breakpoint in the direction
//! of weakly decreasing span never increases the span, and iterating this
//! over jobs (each move strictly reduces the total fractional mass of start
//! times or keeps span equal while snapping one more job) terminates with an
//! all-integer schedule of equal span, because all breakpoints are integer
//! combinations of the integer inputs.
//!
//! [`optimal_span_dp`] searches over schedules presented in sorted-start
//! order with memoization on `(remaining set, last start, covered
//! frontier)`: every interval that extends past the last start truncates to
//! a single contiguous covered region `[s_last, R)`, so the marginal cost of
//! the next interval depends only on `R`. [`optimal_span_exhaustive`] is an
//! independent brute force used to cross-validate the DP in tests.

use fjs_core::job::{Instance, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::time::{Dur, Time};
use std::collections::HashMap;

/// Errors from the exact solvers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExactError {
    /// A job parameter is not integral.
    NonIntegral,
    /// The instance exceeds the solver's size limits.
    TooLarge {
        /// Number of jobs in the instance.
        jobs: usize,
        /// The solver's job limit.
        limit: usize,
    },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::NonIntegral => {
                write!(
                    f,
                    "exact solvers require integer arrivals, deadlines and lengths"
                )
            }
            ExactError::TooLarge { jobs, limit } => {
                write!(f, "instance has {jobs} jobs, exact solver limit is {limit}")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Maximum jobs accepted by [`optimal_span_dp`] (the state space is
/// exponential in the job count).
pub const DP_JOB_LIMIT: usize = 16;

/// Maximum jobs accepted by [`optimal_span_exhaustive`].
pub const EXHAUSTIVE_JOB_LIMIT: usize = 6;

/// Whether every arrival, deadline and length of the instance is integral,
/// i.e. the precondition of the integrality lemma holds.
pub fn is_integral(inst: &Instance) -> bool {
    inst.jobs().iter().all(|j| {
        j.arrival().get().fract() == 0.0
            && j.deadline().get().fract() == 0.0
            && j.length().get().fract() == 0.0
    })
}

/// Whether [`optimal_span_dp`] accepts this instance (integral and at most
/// [`DP_JOB_LIMIT`] jobs) — a cheap pre-check so callers can decide whether
/// an exact-optimum oracle applies without paying for a failed solve.
pub fn fits_dp(inst: &Instance) -> bool {
    inst.len() <= DP_JOB_LIMIT && is_integral(inst)
}

/// Whether [`optimal_span_exhaustive`] accepts this instance (integral and
/// at most [`EXHAUSTIVE_JOB_LIMIT`] jobs).
pub fn fits_exhaustive(inst: &Instance) -> bool {
    inst.len() <= EXHAUSTIVE_JOB_LIMIT && is_integral(inst)
}

#[derive(Clone, Copy, Debug)]
struct IntJob {
    a: i64,
    d: i64,
    p: i64,
}

fn to_int_jobs(inst: &Instance) -> Result<Vec<IntJob>, ExactError> {
    inst.jobs()
        .iter()
        .map(|j| {
            let a = j.arrival().get();
            let d = j.deadline().get();
            let p = j.length().get();
            if a.fract() != 0.0 || d.fract() != 0.0 || p.fract() != 0.0 {
                return Err(ExactError::NonIntegral);
            }
            Ok(IntJob {
                a: a as i64,
                d: d as i64,
                p: p as i64,
            })
        })
        .collect()
}

/// Exact optimal span via memoized search in sorted-start order.
///
/// Accepts integer instances with at most [`DP_JOB_LIMIT`] jobs; complexity
/// is `O(2^n · T² · n · W)` in the worst case (`T` = horizon, `W` = window
/// width), so keep windows modest.
pub fn optimal_span_dp(inst: &Instance) -> Result<Dur, ExactError> {
    let jobs = to_int_jobs(inst)?;
    let n = jobs.len();
    if n == 0 {
        return Ok(Dur::ZERO);
    }
    if n > DP_JOB_LIMIT {
        return Err(ExactError::TooLarge {
            jobs: n,
            limit: DP_JOB_LIMIT,
        });
    }

    let t0 = jobs.iter().map(|j| j.a).min().expect("non-empty");
    let full_mask: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: HashMap<(u32, i64, i64), i64> = HashMap::new();

    // Search over schedules listed in nondecreasing start order. `s_last`
    // is the previous start; `r` the covered frontier (max endpoint so
    // far). All existing intervals start <= s_last, so coverage beyond
    // s_last is exactly [s_last, r) — the next interval's marginal cost is
    // max(0, s+p − max(s, r)).
    fn solve(
        jobs: &[IntJob],
        mask: u32,
        s_last: i64,
        r: i64,
        memo: &mut HashMap<(u32, i64, i64), i64>,
    ) -> i64 {
        if mask == 0 {
            return 0;
        }
        if let Some(&v) = memo.get(&(mask, s_last, r)) {
            return v;
        }
        let mut best = i64::MAX;
        for (idx, job) in jobs.iter().enumerate() {
            if mask & (1 << idx) == 0 {
                continue;
            }
            let lo = job.a.max(s_last);
            if lo > job.d {
                continue; // this job cannot start at or after s_last → this ordering is infeasible
            }
            for s in lo..=job.d {
                let e = s + job.p;
                let marginal = (e - r.max(s)).max(0);
                if marginal >= best {
                    // Larger s only weakly increases marginal for this job,
                    // but future costs vary; cannot break. Just skip if the
                    // immediate cost alone already matches best and e <= r
                    // offers nothing — conservative: no skip.
                }
                let rest = solve(jobs, mask & !(1 << idx), s, r.max(e), memo);
                if rest != i64::MAX {
                    best = best.min(marginal + rest);
                }
            }
        }
        memo.insert((mask, s_last, r), best);
        best
    }

    let best = solve(&jobs, full_mask, t0, t0, &mut memo);
    debug_assert!(
        best != i64::MAX,
        "every instance admits the deadline schedule"
    );
    Ok(Dur::new(best as f64))
}

/// Exact optimal span **with a witness schedule**, via the same memoized
/// search as [`optimal_span_dp`] plus choice recording.
///
/// The returned schedule is validated feasible and its span equals the
/// returned optimum exactly.
pub fn optimal_schedule_dp(inst: &Instance) -> Result<(Dur, Schedule), ExactError> {
    let jobs = to_int_jobs(inst)?;
    let n = jobs.len();
    if n == 0 {
        return Ok((Dur::ZERO, Schedule::with_len(0)));
    }
    if n > DP_JOB_LIMIT {
        return Err(ExactError::TooLarge {
            jobs: n,
            limit: DP_JOB_LIMIT,
        });
    }

    let t0 = jobs.iter().map(|j| j.a).min().expect("non-empty");
    let full_mask: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: HashMap<(u32, i64, i64), i64> = HashMap::new();
    let mut choice: HashMap<(u32, i64, i64), (usize, i64)> = HashMap::new();

    fn solve_rec(
        jobs: &[IntJob],
        mask: u32,
        s_last: i64,
        r: i64,
        memo: &mut HashMap<(u32, i64, i64), i64>,
        choice: &mut HashMap<(u32, i64, i64), (usize, i64)>,
    ) -> i64 {
        if mask == 0 {
            return 0;
        }
        if let Some(&v) = memo.get(&(mask, s_last, r)) {
            return v;
        }
        let mut best = i64::MAX;
        let mut best_choice = None;
        for (idx, job) in jobs.iter().enumerate() {
            if mask & (1 << idx) == 0 {
                continue;
            }
            let lo = job.a.max(s_last);
            if lo > job.d {
                continue;
            }
            for s in lo..=job.d {
                let e = s + job.p;
                let marginal = (e - r.max(s)).max(0);
                let rest = solve_rec(jobs, mask & !(1 << idx), s, r.max(e), memo, choice);
                if rest != i64::MAX && marginal + rest < best {
                    best = marginal + rest;
                    best_choice = Some((idx, s));
                }
            }
        }
        memo.insert((mask, s_last, r), best);
        if let Some(c) = best_choice {
            choice.insert((mask, s_last, r), c);
        }
        best
    }

    let best = solve_rec(&jobs, full_mask, t0, t0, &mut memo, &mut choice);
    debug_assert!(best != i64::MAX);

    // Walk the choices to materialize the schedule.
    let mut schedule = Schedule::with_len(n);
    let (mut mask, mut s_last, mut r) = (full_mask, t0, t0);
    while mask != 0 {
        let &(idx, s) = choice
            .get(&(mask, s_last, r))
            .expect("every reachable non-empty state has a recorded choice");
        schedule.set_start(JobId(idx as u32), Time::new(s as f64));
        let e = s + jobs[idx].p;
        mask &= !(1 << idx);
        s_last = s;
        r = r.max(e);
    }
    debug_assert!(schedule.validate(inst).is_ok());
    debug_assert_eq!(schedule.span(inst), Dur::new(best as f64));
    Ok((Dur::new(best as f64), schedule))
}

/// Exact optimal span via brute-force product enumeration over the integer
/// grid. Exponentially slower than [`optimal_span_dp`]; only for
/// cross-validation (at most [`EXHAUSTIVE_JOB_LIMIT`] jobs).
pub fn optimal_span_exhaustive(inst: &Instance) -> Result<Dur, ExactError> {
    let jobs = to_int_jobs(inst)?;
    let n = jobs.len();
    if n == 0 {
        return Ok(Dur::ZERO);
    }
    if n > EXHAUSTIVE_JOB_LIMIT {
        return Err(ExactError::TooLarge {
            jobs: n,
            limit: EXHAUSTIVE_JOB_LIMIT,
        });
    }

    let mut starts = vec![0i64; n];
    let mut best = i64::MAX;

    fn rec(jobs: &[IntJob], starts: &mut [i64], k: usize, best: &mut i64) {
        if k == jobs.len() {
            // Union length of [s_i, s_i + p_i).
            let mut ivs: Vec<(i64, i64)> = jobs
                .iter()
                .zip(starts.iter())
                .map(|(j, &s)| (s, s + j.p))
                .collect();
            ivs.sort_unstable();
            let mut total = 0;
            let mut cur = ivs[0];
            for &(lo, hi) in &ivs[1..] {
                if lo <= cur.1 {
                    cur.1 = cur.1.max(hi);
                } else {
                    total += cur.1 - cur.0;
                    cur = (lo, hi);
                }
            }
            total += cur.1 - cur.0;
            *best = (*best).min(total);
            return;
        }
        for s in jobs[k].a..=jobs[k].d {
            starts[k] = s;
            rec(jobs, starts, k + 1, best);
        }
    }

    rec(&jobs, &mut starts, 0, &mut best);
    Ok(Dur::new(best as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;
    use fjs_core::time::dur;

    #[test]
    fn empty_instance_zero() {
        assert_eq!(optimal_span_dp(&Instance::empty()), Ok(Dur::ZERO));
        assert_eq!(optimal_span_exhaustive(&Instance::empty()), Ok(Dur::ZERO));
    }

    #[test]
    fn single_job_span_is_length() {
        let inst = Instance::new(vec![Job::adp(0.0, 5.0, 3.0)]);
        assert_eq!(optimal_span_dp(&inst), Ok(dur(3.0)));
        assert_eq!(optimal_span_exhaustive(&inst), Ok(dur(3.0)));
    }

    #[test]
    fn two_jobs_stack_when_windows_allow() {
        // Both can start at t=4: span = max length.
        let inst = Instance::new(vec![Job::adp(0.0, 4.0, 2.0), Job::adp(4.0, 8.0, 3.0)]);
        assert_eq!(optimal_span_dp(&inst), Ok(dur(3.0)));
        assert_eq!(optimal_span_exhaustive(&inst), Ok(dur(3.0)));
    }

    #[test]
    fn disjoint_jobs_sum() {
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 1.0), Job::adp(10.0, 10.0, 2.0)]);
        assert_eq!(optimal_span_dp(&inst), Ok(dur(3.0)));
    }

    #[test]
    fn partial_overlap_optimum() {
        // J0 rigid at 0 len 2; J1 window [1, 3] len 2.
        // Best: start J1 at 1 → union [0,3) = 3? or J1 at... s=1: [0,2)∪[1,3)=3.
        // s=3: [0,2)∪[3,5)=4. s=2: [0,4)=4. Optimum 3.
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 2.0), Job::adp(1.0, 3.0, 2.0)]);
        assert_eq!(optimal_span_dp(&inst), Ok(dur(3.0)));
        assert_eq!(optimal_span_exhaustive(&inst), Ok(dur(3.0)));
    }

    #[test]
    fn nesting_beats_chaining() {
        // A long job can absorb two short ones entirely.
        let inst = Instance::new(vec![
            Job::adp(0.0, 10.0, 8.0),
            Job::adp(2.0, 20.0, 1.0),
            Job::adp(5.0, 20.0, 1.0),
        ]);
        assert_eq!(optimal_span_dp(&inst), Ok(dur(8.0)));
    }

    #[test]
    fn rejects_non_integral() {
        let inst = Instance::new(vec![Job::adp(0.0, 1.5, 1.0)]);
        assert_eq!(optimal_span_dp(&inst), Err(ExactError::NonIntegral));
        assert_eq!(optimal_span_exhaustive(&inst), Err(ExactError::NonIntegral));
    }

    #[test]
    fn applicability_predicates_mirror_solver_acceptance() {
        let ok = Instance::new(vec![Job::adp(0.0, 2.0, 1.0)]);
        assert!(is_integral(&ok) && fits_dp(&ok) && fits_exhaustive(&ok));
        let frac = Instance::new(vec![Job::adp(0.0, 1.5, 1.0)]);
        assert!(!is_integral(&frac) && !fits_dp(&frac) && !fits_exhaustive(&frac));
        let big = Instance::new((0..7).map(|i| Job::adp(i as f64, i as f64, 1.0)).collect());
        assert!(fits_dp(&big) && !fits_exhaustive(&big));
        assert!(optimal_span_dp(&big).is_ok());
        assert!(optimal_span_exhaustive(&big).is_err());
    }

    #[test]
    fn rejects_oversize() {
        let jobs: Vec<Job> = (0..20).map(|i| Job::adp(i as f64, i as f64, 1.0)).collect();
        let inst = Instance::new(jobs);
        assert!(matches!(
            optimal_span_dp(&inst),
            Err(ExactError::TooLarge { .. })
        ));
    }

    #[test]
    fn dp_matches_exhaustive_on_fixed_cases() {
        let cases = vec![
            vec![
                Job::adp(0.0, 3.0, 2.0),
                Job::adp(1.0, 5.0, 1.0),
                Job::adp(2.0, 2.0, 3.0),
            ],
            vec![
                Job::adp(0.0, 0.0, 1.0),
                Job::adp(0.0, 6.0, 2.0),
                Job::adp(3.0, 4.0, 2.0),
            ],
            vec![
                Job::adp(0.0, 2.0, 1.0),
                Job::adp(0.0, 2.0, 2.0),
                Job::adp(1.0, 4.0, 1.0),
                Job::adp(3.0, 6.0, 3.0),
            ],
        ];
        for jobs in cases {
            let inst = Instance::new(jobs);
            assert_eq!(
                optimal_span_dp(&inst).unwrap(),
                optimal_span_exhaustive(&inst).unwrap(),
                "instance: {inst:?}"
            );
        }
    }

    #[test]
    fn reconstruction_matches_span_and_is_feasible() {
        let cases = vec![
            vec![Job::adp(0.0, 4.0, 2.0), Job::adp(4.0, 8.0, 3.0)],
            vec![Job::adp(0.0, 0.0, 2.0), Job::adp(1.0, 3.0, 2.0)],
            vec![
                Job::adp(0.0, 2.0, 1.0),
                Job::adp(0.0, 2.0, 2.0),
                Job::adp(1.0, 4.0, 1.0),
                Job::adp(3.0, 6.0, 3.0),
            ],
        ];
        for jobs in cases {
            let inst = Instance::new(jobs);
            let (span, schedule) = optimal_schedule_dp(&inst).unwrap();
            assert!(schedule.validate(&inst).is_ok());
            assert_eq!(schedule.span(&inst), span);
            assert_eq!(span, optimal_span_dp(&inst).unwrap());
        }
    }

    #[test]
    fn reconstruction_empty_instance() {
        let (span, schedule) = optimal_schedule_dp(&Instance::empty()).unwrap();
        assert_eq!(span, Dur::ZERO);
        assert!(schedule.is_empty());
    }

    #[test]
    fn optimum_never_exceeds_lazy_or_eager() {
        use fjs_core::prelude::*;
        let inst = Instance::new(vec![
            Job::adp(0.0, 4.0, 2.0),
            Job::adp(1.0, 3.0, 1.0),
            Job::adp(2.0, 7.0, 2.0),
            Job::adp(6.0, 6.0, 1.0),
        ]);
        let opt = optimal_span_dp(&inst).unwrap();
        // Eager: [0,2)∪[1,2)∪[2,4)∪[6,7) = 5. Lazy: [4,6)∪[3,4)∪[7,9)∪[6,7) = 6.
        let eager_span = {
            let starts: Vec<(JobId, Time)> = inst.iter().map(|(id, j)| (id, j.arrival())).collect();
            Schedule::from_starts(inst.len(), starts).span(&inst)
        };
        assert!(opt <= eager_span);
        // Start J0@2 ([2,4)), J1@2 ([2,3)), J2@2 ([2,4)), J3@6 ([6,7)):
        // union [2,4) ∪ [6,7) → 3.
        assert_eq!(opt, dur(3.0));
    }
}
