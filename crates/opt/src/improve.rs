//! Local-search **upper bounds** on the optimal span for instances too large
//! for exact optimization.
//!
//! Starting from any feasible schedule, [`coordinate_descent`] repeatedly
//! repositions one job at a time to its best feasible start given all other
//! jobs. By the piecewise-linearity of the span in a single start time, the
//! per-job optimum is attained at a *breakpoint*: the job's window bounds or
//! a position where one of its endpoints meets another active interval's
//! endpoint. The result is a feasible schedule, hence `span ≥ span_min`;
//! together with `fjs-opt`'s lower bounds this brackets OPT.

use fjs_core::interval::IntervalSet;
use fjs_core::job::{Instance, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::time::{Dur, Time};

/// Result of a descent run.
#[derive(Clone, Debug)]
pub struct DescentResult {
    /// The improved feasible schedule.
    pub schedule: Schedule,
    /// Its span.
    pub span: Dur,
    /// Full passes over the job set performed.
    pub passes: usize,
}

/// Improves a feasible schedule by coordinate descent until a full pass
/// yields no improvement or `max_passes` is reached.
///
/// # Panics
/// Panics if `init` is not a complete feasible schedule for `inst`.
pub fn coordinate_descent(inst: &Instance, init: &Schedule, max_passes: usize) -> DescentResult {
    init.validate(inst)
        .expect("descent requires a feasible initial schedule");
    let n = inst.len();
    let mut starts: Vec<Time> = (0..n)
        .map(|i| init.start(JobId(i as u32)).expect("complete"))
        .collect();

    let mut passes = 0;
    while passes < max_passes {
        passes += 1;
        let mut improved = false;
        for i in 0..n {
            let job = &inst.jobs()[i];
            // Union of all other active intervals.
            let others: IntervalSet = (0..n)
                .filter(|&q| q != i)
                .map(|q| inst.jobs()[q].active_interval_at(starts[q]))
                .collect();

            // Candidate starts: window bounds plus endpoint alignments.
            let (lo, hi) = job.start_window();
            let p = job.length();
            let mut cands: Vec<Time> = vec![lo, hi];
            for seg in others.segments() {
                for &e in &[seg.lo(), seg.hi()] {
                    // Align left endpoint at e, or right endpoint at e.
                    let c1 = e;
                    let c2 = e - p;
                    if c1 >= lo && c1 <= hi {
                        cands.push(c1);
                    }
                    if c2 >= lo && c2 <= hi {
                        cands.push(c2);
                    }
                }
            }
            let current = starts[i];
            let current_cost = marginal(&others, current, p);
            let mut best = (current_cost, current);
            for &c in &cands {
                let cost = marginal(&others, c, p);
                if cost < best.0 {
                    best = (cost, c);
                }
            }
            if best.1 != current && best.0 < current_cost {
                starts[i] = best.1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let schedule = Schedule::from_starts(
        n,
        starts
            .iter()
            .enumerate()
            .map(|(i, &s)| (JobId(i as u32), s)),
    );
    let span = schedule.span(inst);
    DescentResult {
        schedule,
        span,
        passes,
    }
}

/// Length of `[s, s+p)` not covered by `others`.
fn marginal(others: &IntervalSet, s: Time, p: Dur) -> Dur {
    let iv = fjs_core::interval::Interval::active(s, p);
    p - others.measure_within(&iv)
}

/// A feasible upper bound on the optimal span: best of the all-at-deadline
/// and all-at-arrival schedules, then coordinate descent.
pub fn upper_bound_span(inst: &Instance, max_passes: usize) -> DescentResult {
    if inst.is_empty() {
        return DescentResult {
            schedule: Schedule::with_len(0),
            span: Dur::ZERO,
            passes: 0,
        };
    }
    let lazy = Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.deadline())));
    let eager = Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.arrival())));
    let init = if lazy.span(inst) <= eager.span(inst) {
        lazy
    } else {
        eager
    };
    coordinate_descent(inst, &init, max_passes)
}

/// A (usually tighter) upper bound via **randomized restarts**: descent
/// from the deterministic anchors plus `restarts` random feasible
/// schedules (each job at an independent uniform point of its window,
/// seeded splitmix64). Returns the best result found. Deterministic per
/// `(inst, seed)`.
pub fn upper_bound_span_randomized(
    inst: &Instance,
    max_passes: usize,
    restarts: usize,
    seed: u64,
) -> DescentResult {
    let mut best = upper_bound_span(inst, max_passes);
    if inst.is_empty() {
        return best;
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut unit = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..restarts {
        let init = Schedule::from_starts(
            inst.len(),
            inst.iter().map(|(id, j)| {
                let s = j.arrival() + j.laxity() * unit();
                (id, s.min(j.deadline()))
            }),
        );
        let res = coordinate_descent(inst, &init, max_passes);
        if res.span < best.span {
            best = res;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;
    use fjs_core::time::{dur, t};

    #[test]
    fn descent_finds_stacking_optimum() {
        // Two jobs that can fully stack: descent should reach span 3.
        let inst = Instance::new(vec![Job::adp(0.0, 4.0, 2.0), Job::adp(4.0, 8.0, 3.0)]);
        let res = upper_bound_span(&inst, 50);
        assert_eq!(res.span, dur(3.0));
        assert!(res.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn descent_never_worsens_the_initial_schedule() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 5.0, 1.0),
            Job::adp(2.0, 9.0, 3.0),
            Job::adp(4.0, 4.0, 2.0),
        ]);
        let lazy = Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.deadline())));
        let before = lazy.span(&inst);
        let res = coordinate_descent(&inst, &lazy, 50);
        assert!(res.span <= before);
        assert!(res.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn descent_matches_exact_on_small_instances() {
        let cases = vec![
            vec![Job::adp(0.0, 0.0, 2.0), Job::adp(1.0, 3.0, 2.0)],
            vec![
                Job::adp(0.0, 10.0, 8.0),
                Job::adp(2.0, 20.0, 1.0),
                Job::adp(5.0, 20.0, 1.0),
            ],
            vec![
                Job::adp(0.0, 3.0, 2.0),
                Job::adp(1.0, 5.0, 1.0),
                Job::adp(2.0, 2.0, 3.0),
            ],
        ];
        for jobs in cases {
            let inst = Instance::new(jobs);
            let exact = crate::exact::optimal_span_dp(&inst).unwrap();
            let res = upper_bound_span(&inst, 100);
            assert!(res.span >= exact, "upper bound below optimum?!");
            // Descent is a heuristic; on these easy cases it is exact.
            assert_eq!(res.span, exact, "instance {inst:?}");
        }
    }

    #[test]
    fn empty_instance() {
        let res = upper_bound_span(&Instance::empty(), 10);
        assert_eq!(res.span, Dur::ZERO);
        let res = upper_bound_span_randomized(&Instance::empty(), 10, 3, 1);
        assert_eq!(res.span, Dur::ZERO);
    }

    #[test]
    fn randomized_restarts_never_worse_than_plain() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 8.0, 2.0),
            Job::adp(1.0, 6.0, 3.0),
            Job::adp(2.0, 12.0, 1.0),
            Job::adp(9.0, 15.0, 2.0),
        ]);
        let plain = upper_bound_span(&inst, 30);
        let rand = upper_bound_span_randomized(&inst, 30, 8, 42);
        assert!(rand.span <= plain.span);
        assert!(rand.schedule.validate(&inst).is_ok());
        // Deterministic per seed.
        let again = upper_bound_span_randomized(&inst, 30, 8, 42);
        assert_eq!(rand.span, again.span);
    }

    #[test]
    fn randomized_restarts_respect_optimum() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 3.0, 2.0),
            Job::adp(1.0, 5.0, 1.0),
            Job::adp(2.0, 2.0, 3.0),
        ]);
        let opt = crate::exact::optimal_span_dp(&inst).unwrap();
        let res = upper_bound_span_randomized(&inst, 50, 10, 7);
        assert!(res.span >= opt);
    }

    #[test]
    fn rigid_instance_is_a_fixed_point() {
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 1.0), Job::adp(5.0, 5.0, 1.0)]);
        let res = upper_bound_span(&inst, 10);
        assert_eq!(res.span, dur(2.0));
        assert_eq!(res.schedule.start(fjs_core::job::JobId(0)), Some(t(0.0)));
    }
}
