//! Certified lower bounds on the optimal span.
//!
//! For instances too large for exact optimization, experiments compare a
//! scheduler's span against a *lower bound* `LB ≤ span_min(J)`; the measured
//! ratio `span_ALG / LB` then only **over**-estimates the true competitive
//! ratio, so "measured ≤ paper bound" stays a sound check.
//!
//! Four bounds (the first is the paper's own argument style — Theorems 3.4
//! and 3.5 lower-bound OPT by a set of pairwise non-overlappable flag jobs):
//!
//! * [`lb_chain`] — the maximum of `Σ p(J)` over a set of jobs whose active
//!   intervals can never pairwise overlap (each next job arrives no earlier
//!   than the previous one's latest completion `d+p`);
//! * [`lb_mandatory`] — the measure of the union of *mandatory parts*
//!   `[d(J), a(J)+p(J))`, which every feasible schedule covers;
//! * [`lb_max_length`] — `max p(J)` (subsumed by [`lb_chain`], kept as a
//!   sanity baseline);
//! * [`lb_uniform_windows`] — the uniform-jobs paper's argument: `k · p`
//!   for `k` pairwise-disjoint expanded windows `[a, d + p)` (equal-length
//!   instances; coincides with [`lb_chain`] there, via a cheaper greedy).

use fjs_core::interval::IntervalSet;
use fjs_core::job::Instance;
use fjs_core::time::{Dur, Time};

/// `max p(J)` — any schedule's span is at least the longest job.
pub fn lb_max_length(inst: &Instance) -> Dur {
    inst.max_length().unwrap_or(Dur::ZERO)
}

/// Measure of the union of mandatory parts `[d(J), a(J)+p(J))`.
pub fn lb_mandatory(inst: &Instance) -> Dur {
    inst.jobs()
        .iter()
        .filter_map(|j| j.mandatory_part())
        .collect::<IntervalSet>()
        .measure()
}

/// Maximum total length of a *never-overlappable chain*: jobs
/// `J_1, …, J_m` with `a(J_{i+1}) ≥ d(J_i) + p(J_i)`. The active intervals
/// of such jobs are disjoint under every scheduler, so their total length
/// lower-bounds the optimal span.
///
/// Computed in `O(n log n)` with a Fenwick prefix-max over compressed
/// latest-completion coordinates.
///
/// ```
/// use fjs_core::job::{Instance, Job};
/// use fjs_core::time::dur;
/// use fjs_opt::lb_chain;
///
/// let inst = Instance::new(vec![
///     Job::adp(0.0, 1.0, 2.0),  // latest completion 3
///     Job::adp(3.0, 9.0, 4.0),  // arrives at 3 → chains with the first
/// ]);
/// assert_eq!(lb_chain(&inst), dur(6.0));
/// ```
pub fn lb_chain(inst: &Instance) -> Dur {
    let n = inst.len();
    if n == 0 {
        return Dur::ZERO;
    }

    // Jobs sorted by arrival; chain predecessor i of j needs
    // d_i + p_i <= a_j, and f(i) is final before any j with a_j >= a_i + …
    // (a predecessor always arrives strictly earlier than its completion
    // bound, hence earlier than j's arrival).
    let mut by_arrival: Vec<usize> = (0..n).collect();
    by_arrival.sort_by_key(|&i| (inst.jobs()[i].arrival(), i));

    // Coordinate-compress latest completions.
    let mut comps: Vec<Time> = inst.jobs().iter().map(|j| j.latest_completion()).collect();
    comps.sort();
    comps.dedup();
    let rank = |t: Time| comps.partition_point(|&c| c <= t); // # comps <= t

    let mut fenwick = PrefixMax::new(comps.len());
    // Pending insertions: (completion, f-value), processed in arrival order
    // via a pointer over jobs sorted by completion bound.
    let mut by_completion: Vec<usize> = (0..n).collect();
    by_completion.sort_by_key(|&i| inst.jobs()[i].latest_completion());
    let mut f = vec![0.0f64; n];
    let mut insert_ptr = 0;
    let mut best = 0.0f64;

    for &j in &by_arrival {
        let job = &inst.jobs()[j];
        // Insert every job whose completion bound is <= a_j. Such a job
        // arrived strictly before a_j, so its f-value is final.
        while insert_ptr < n {
            let i = by_completion[insert_ptr];
            if inst.jobs()[i].latest_completion() <= job.arrival() {
                let r = rank(inst.jobs()[i].latest_completion());
                fenwick.update(r - 1, f[i]);
                insert_ptr += 1;
            } else {
                break;
            }
        }
        let prefix = rank(job.arrival()); // predecessors have comp <= a_j
        let best_pred = if prefix == 0 {
            0.0
        } else {
            fenwick.query(prefix - 1)
        };
        f[j] = best_pred + job.length().get();
        best = best.max(f[j]);
    }
    Dur::new(best)
}

/// The uniform-jobs window bound: `k · p` where `k` is the maximum number
/// of pairwise-disjoint *expanded windows* `[a(J), d(J) + p)` — the
/// lower-bound argument style of the uniform-jobs paper (Liu, Khuller &
/// Tang). Every feasible schedule keeps job `J` busy inside its expanded
/// window, so `k` disjoint windows pin `k` disjoint unit-of-`p` busy
/// intervals and `span_min ≥ k · p`.
///
/// Returns [`Dur::ZERO`] on mixed-length or empty instances (the argument
/// needs one common `p`). On uniform instances this is exactly the value
/// [`lb_chain`] converges to — the chain condition `a(J') ≥ d(J) + p` *is*
/// expanded-window disjointness — but via a single `O(n log n)` greedy
/// sweep, and the equality is pinned by a property test rather than
/// assumed.
///
/// ```
/// use fjs_core::job::{Instance, Job};
/// use fjs_core::time::dur;
/// use fjs_opt::lb_uniform_windows;
///
/// let inst = Instance::new(vec![
///     Job::adp(0.0, 1.0, 1.0), // expanded window [0, 2)
///     Job::adp(2.0, 4.0, 1.0), // expanded window [2, 5) — disjoint
///     Job::adp(3.0, 3.0, 1.0), // overlaps the second; not countable
/// ]);
/// assert_eq!(lb_uniform_windows(&inst), dur(2.0));
/// ```
pub fn lb_uniform_windows(inst: &Instance) -> Dur {
    let p = match inst.uniform_length() {
        Some(p) => p,
        None => return Dur::ZERO,
    };
    // Greedy activity selection maximizes the number of disjoint
    // intervals: scan by expanded-window end, take every window starting
    // at or after the last taken end.
    let mut windows: Vec<(Time, Time)> = inst
        .jobs()
        .iter()
        .map(|j| (j.latest_completion(), j.arrival()))
        .collect();
    windows.sort();
    let mut taken = 0u32;
    let mut frontier: Option<Time> = None;
    for (end, start) in windows {
        if frontier.is_none_or(|f| start >= f) {
            taken += 1;
            frontier = Some(end);
        }
    }
    Dur::new(p.get() * f64::from(taken))
}

/// The tightest of the certified lower bounds.
pub fn best_lower_bound(inst: &Instance) -> Dur {
    lb_chain(inst)
        .max(lb_mandatory(inst))
        .max(lb_max_length(inst))
        .max(lb_uniform_windows(inst))
}

/// Fenwick tree over prefix maxima.
struct PrefixMax {
    tree: Vec<f64>,
}

impl PrefixMax {
    fn new(n: usize) -> Self {
        PrefixMax {
            tree: vec![0.0; n + 1],
        }
    }

    /// Raises the value at 0-based index `i` to at least `v`.
    fn update(&mut self, i: usize, v: f64) {
        let mut idx = i + 1;
        while idx < self.tree.len() {
            if self.tree[idx] < v {
                self.tree[idx] = v;
            }
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Max over 0-based indices `0..=i`.
    fn query(&self, i: usize) -> f64 {
        let mut idx = i + 1;
        let mut best = 0.0f64;
        while idx > 0 {
            best = best.max(self.tree[idx]);
            idx -= idx & idx.wrapping_neg();
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;
    use fjs_core::time::dur;

    #[test]
    fn empty_instance_bounds_are_zero() {
        let inst = Instance::empty();
        assert_eq!(lb_chain(&inst), Dur::ZERO);
        assert_eq!(lb_mandatory(&inst), Dur::ZERO);
        assert_eq!(best_lower_bound(&inst), Dur::ZERO);
    }

    #[test]
    fn chain_of_disjoint_jobs_sums_lengths() {
        // Each job arrives after the previous latest completion.
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 2.0), // latest completion 3
            Job::adp(3.0, 4.0, 1.0), // latest completion 5
            Job::adp(5.0, 5.0, 4.0), // latest completion 9
        ]);
        assert_eq!(lb_chain(&inst), dur(7.0));
    }

    #[test]
    fn chain_picks_best_branch() {
        // Two incompatible early jobs; the heavier should be chained.
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.5, 1.0),
            Job::adp(0.0, 0.5, 5.0), // overlappable with the first → pick one
            Job::adp(10.0, 11.0, 2.0),
        ]);
        assert_eq!(lb_chain(&inst), dur(7.0));
    }

    #[test]
    fn chain_at_least_max_length() {
        let inst = Instance::new(vec![Job::adp(0.0, 100.0, 9.0), Job::adp(0.0, 100.0, 1.0)]);
        assert!(lb_chain(&inst) >= lb_max_length(&inst));
        assert_eq!(lb_chain(&inst), dur(9.0), "overlappable jobs do not chain");
    }

    #[test]
    fn mandatory_union_measured() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 3.0),  // mandatory [1, 3)
            Job::adp(2.0, 2.5, 2.0),  // mandatory [2.5, 4)
            Job::adp(0.0, 50.0, 1.0), // no mandatory part
        ]);
        // [1,3) ∪ [2.5,4) = [1,4) → 3.
        assert_eq!(lb_mandatory(&inst), dur(3.0));
    }

    #[test]
    fn rigid_jobs_mandatory_equals_eager_span() {
        // All-rigid instances: mandatory parts are the actual active
        // intervals, so the bound is exact.
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 2.0),
            Job::adp(1.0, 1.0, 2.0),
            Job::adp(10.0, 10.0, 1.0),
        ]);
        assert_eq!(lb_mandatory(&inst), dur(4.0));
        assert_eq!(best_lower_bound(&inst), dur(4.0));
    }

    #[test]
    fn boundary_touching_jobs_chain() {
        // a_2 exactly equals d_1 + p_1: half-open intervals make them
        // non-overlappable, so they chain.
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 2.0), // latest completion 3
            Job::adp(3.0, 10.0, 5.0),
        ]);
        assert_eq!(lb_chain(&inst), dur(7.0));
    }

    #[test]
    fn chain_handles_equal_arrivals() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 1.0),
            Job::adp(0.0, 0.0, 2.0),
            Job::adp(0.0, 0.0, 3.0),
        ]);
        assert_eq!(lb_chain(&inst), dur(3.0));
    }

    #[test]
    fn uniform_windows_counts_disjoint_expanded_windows() {
        // Windows [0,2), [2,5), [3,4): greedy takes [0,2) then [3,4) —
        // wait, [2,5) ends later than [3,4), so end-order scan takes
        // [0,2), [3,4) → k = 2. With p = 1, LB = 2.
        let inst = Instance::new(vec![
            Job::adp(0.0, 1.0, 1.0),
            Job::adp(2.0, 4.0, 1.0),
            Job::adp(3.0, 3.0, 1.0),
        ]);
        assert_eq!(lb_uniform_windows(&inst), dur(2.0));
        // The common length multiplies the count.
        let scaled = Instance::new(vec![
            Job::adp(0.0, 1.0, 3.0), // expanded window [0, 4)
            Job::adp(4.0, 6.0, 3.0), // expanded window [4, 9)
        ]);
        assert_eq!(lb_uniform_windows(&scaled), dur(6.0));
    }

    #[test]
    fn uniform_windows_is_zero_on_mixed_instances() {
        let inst = Instance::new(vec![Job::adp(0.0, 1.0, 1.0), Job::adp(0.0, 1.0, 2.0)]);
        assert_eq!(lb_uniform_windows(&inst), Dur::ZERO);
        assert_eq!(lb_uniform_windows(&Instance::empty()), Dur::ZERO);
    }

    #[test]
    fn prefix_max_fenwick() {
        let mut pm = PrefixMax::new(8);
        pm.update(3, 5.0);
        pm.update(6, 2.0);
        assert_eq!(pm.query(2), 0.0);
        assert_eq!(pm.query(3), 5.0);
        assert_eq!(pm.query(7), 5.0);
        pm.update(1, 9.0);
        assert_eq!(pm.query(1), 9.0);
        assert_eq!(pm.query(7), 9.0);
    }
}
