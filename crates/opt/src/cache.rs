//! Process-wide memo cache for exact optima ([`cached_optimal_span_dp`]).
//!
//! The conformance harness and the exhaustive validation sweeps solve the
//! *same* small instances to optimality over and over: every scheduler kind
//! is ratio-checked against the same deck, every metamorphic transform
//! re-derives the optimum of a translated/scaled/permuted copy, and bench
//! iterations repeat whole sweeps. The DP solve dominates those paths, so
//! this module shares solutions across all of them through one
//! process-global table.
//!
//! # Canonical fingerprint
//!
//! Entries are keyed by a canonicalized copy of the instance that quotients
//! out exactly the symmetries the optimum is invariant under:
//!
//! * **translation** — arrivals and deadlines are shifted so the earliest
//!   arrival is 0 (`OPT(I + c) = OPT(I)`);
//! * **uniform scaling** — all values are divided by their GCD, and the
//!   cached optimum is the optimum of that reduced instance
//!   (`OPT(g·I) = g·OPT(I)`, exact in integers by the integrality lemma of
//!   [`crate::exact`]);
//! * **permutation** — jobs are sorted (`OPT` does not depend on job order).
//!
//! The key is the full canonical `(a, d, p)` vector, not a hash of it, so
//! lookups are collision-proof by construction: two instances share an
//! entry iff they are literally the same instance modulo the symmetries
//! above.
//!
//! # Determinism
//!
//! A cache hit returns bit-identical spans to an uncached solve (integers
//! scaled by an integer factor, converted through the same `f64` path), so
//! sweeps are reproducible regardless of cache state; the conformance
//! determinism suite asserts this. [`set_enabled`]`(false)` and [`reset`]
//! exist for tests that want to prove it.

use crate::exact::{optimal_span_dp, ExactError};
use fjs_core::job::Instance;
use fjs_core::time::Dur;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Canonical form of an instance: sorted `(a, d, p)` triples, translated to
/// start at 0 and reduced by their common divisor.
type CanonKey = Vec<(i64, i64, i64)>;

/// Entry cap; past it the cache serves hits but stops inserting (a sweep
/// that somehow enumerates millions of distinct small instances degrades to
/// uncached speed instead of exhausting memory).
pub const CACHE_CAPACITY: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn table() -> &'static Mutex<HashMap<CanonKey, i64>> {
    static TABLE: OnceLock<Mutex<HashMap<CanonKey, i64>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_table() -> std::sync::MutexGuard<'static, HashMap<CanonKey, i64>> {
    // A poisoned lock only means another thread panicked mid-insert; the
    // map itself is still a valid memo table.
    table().lock().unwrap_or_else(|e| e.into_inner())
}

/// Hit/miss counters of the process-wide cache (see [`stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to a DP solve.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Greatest common divisor (non-negative inputs).
fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The canonical key and the scale factor `g` it was reduced by, or `None`
/// for instances outside the integral domain (the cache only fronts the
/// integer DP).
fn canonicalize(inst: &Instance) -> Option<(CanonKey, i64)> {
    let mut jobs: Vec<(i64, i64, i64)> = Vec::with_capacity(inst.len());
    for j in inst.jobs() {
        let (a, d, p) = (j.arrival().get(), j.deadline().get(), j.length().get());
        if a.fract() != 0.0 || d.fract() != 0.0 || p.fract() != 0.0 {
            return None;
        }
        // The DP itself only sees instances with modest windows, but guard
        // the i64 conversion anyway.
        if a.abs() > 1e15 || d.abs() > 1e15 || p.abs() > 1e15 {
            return None;
        }
        jobs.push((a as i64, d as i64, p as i64));
    }
    let t0 = jobs.iter().map(|&(a, _, _)| a).min().unwrap_or(0);
    let mut g = 0;
    for (a, d, p) in &mut jobs {
        *a -= t0;
        *d -= t0;
        g = gcd(g, gcd(*a, gcd(*d, *p)));
    }
    let g = g.max(1);
    for (a, d, p) in &mut jobs {
        *a /= g;
        *d /= g;
        *p /= g;
    }
    jobs.sort_unstable();
    Some((jobs, g))
}

/// [`optimal_span_dp`] fronted by the process-wide memo table.
///
/// Exactly equivalent to the uncached solver — same `Ok` spans bit for bit,
/// same errors — but a repeated instance (or a translate/scale/permute of
/// one) is answered from the table. Disabled caches ([`set_enabled`])
/// delegate straight through without touching the counters.
pub fn cached_optimal_span_dp(inst: &Instance) -> Result<Dur, ExactError> {
    if !ENABLED.load(Ordering::Relaxed) {
        return optimal_span_dp(inst);
    }
    let Some((key, g)) = canonicalize(inst) else {
        // Non-integral: let the solver produce its own error.
        return optimal_span_dp(inst);
    };
    if let Some(&canon_span) = lock_table().get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Dur::new((canon_span * g) as f64));
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let span = optimal_span_dp(inst)?;
    let span_int = span.get() as i64;
    debug_assert_eq!(
        span_int as f64,
        span.get(),
        "integral instance, integral optimum"
    );
    debug_assert_eq!(span_int % g, 0, "optimum scales with the instance");
    let mut tbl = lock_table();
    if tbl.len() < CACHE_CAPACITY {
        tbl.insert(key, span_int / g);
    }
    Ok(span)
}

/// Snapshot of the cache counters and size.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: lock_table().len(),
    }
}

/// Clears all entries and zeroes the counters. For tests and for sweeps
/// that want per-run hit rates.
pub fn reset() {
    let mut tbl = lock_table();
    tbl.clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Turns the cache on or off process-wide (it starts enabled). While off,
/// [`cached_optimal_span_dp`] is a plain passthrough: no lookups, no
/// inserts, no counter movement.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the cache is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;
    use fjs_core::time::dur;
    use std::sync::Mutex as StdMutex;

    /// The cache is process-global; tests that depend on counter deltas
    /// serialize on this.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn base() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 3.0, 2.0),
            Job::adp(1.0, 5.0, 1.0),
            Job::adp(2.0, 2.0, 3.0),
        ])
    }

    #[test]
    fn hit_returns_identical_span_and_counts() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let uncached = optimal_span_dp(&base()).unwrap();
        let first = cached_optimal_span_dp(&base()).unwrap();
        let second = cached_optimal_span_dp(&base()).unwrap();
        assert_eq!(first, uncached);
        assert_eq!(second, uncached);
        let s = stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn translation_scaling_permutation_share_one_entry() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let opt = cached_optimal_span_dp(&base()).unwrap();

        let translated = Instance::new(
            base()
                .jobs()
                .iter()
                .map(|j| {
                    Job::adp(
                        j.arrival().get() + 97.0,
                        j.deadline().get() + 97.0,
                        j.length().get(),
                    )
                })
                .collect(),
        );
        assert_eq!(cached_optimal_span_dp(&translated).unwrap(), opt);

        let scaled = Instance::new(
            base()
                .jobs()
                .iter()
                .map(|j| {
                    Job::adp(
                        j.arrival().get() * 4.0,
                        j.deadline().get() * 4.0,
                        j.length().get() * 4.0,
                    )
                })
                .collect(),
        );
        assert_eq!(
            cached_optimal_span_dp(&scaled).unwrap(),
            dur(opt.get() * 4.0)
        );

        let reversed = Instance::new(base().jobs().iter().rev().cloned().collect());
        assert_eq!(cached_optimal_span_dp(&reversed).unwrap(), opt);

        let s = stats();
        assert_eq!(s.entries, 1, "all four variants canonicalize identically");
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn disabled_cache_is_a_passthrough() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        let span = cached_optimal_span_dp(&base()).unwrap();
        set_enabled(true);
        assert_eq!(span, optimal_span_dp(&base()).unwrap());
        let s = stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn non_integral_and_oversize_errors_pass_through() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let frac = Instance::new(vec![Job::adp(0.0, 1.5, 1.0)]);
        assert_eq!(cached_optimal_span_dp(&frac), Err(ExactError::NonIntegral));
        let big = Instance::new((0..20).map(|i| Job::adp(i as f64, i as f64, 1.0)).collect());
        assert!(matches!(
            cached_optimal_span_dp(&big),
            Err(ExactError::TooLarge { .. })
        ));
        // The oversize probe consumed a miss (canonicalization succeeded,
        // the solve failed) but nothing was stored.
        assert_eq!(stats().entries, 0);
    }

    #[test]
    fn empty_instance_cached() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert_eq!(cached_optimal_span_dp(&Instance::empty()), Ok(Dur::ZERO));
        assert_eq!(cached_optimal_span_dp(&Instance::empty()), Ok(Dur::ZERO));
        assert_eq!(stats().hits, 1);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(18, 12), 6);
    }
}
