//! # fjs-opt
//!
//! Offline optimal baselines for flexible job scheduling:
//!
//! * [`exact`] — exact optimal span for small integer instances (memoized
//!   search + independent brute force), the ground truth for experiment E10;
//! * [`bounds`] — certified polynomial-time lower bounds on the optimal
//!   span (never-overlappable chains, mandatory parts), used whenever exact
//!   optimization is infeasible;
//! * [`improve`] — coordinate-descent upper bounds (feasible schedules),
//!   bracketing OPT from above.
//!
//! For any instance: `bounds::best_lower_bound ≤ span_min ≤
//! improve::upper_bound_span`, with equality of the outer two on many easy
//! families (verified by property tests).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod exact;
pub mod improve;

pub use bounds::{best_lower_bound, lb_chain, lb_mandatory, lb_max_length};
pub use exact::{optimal_schedule_dp, optimal_span_dp, optimal_span_exhaustive, ExactError};
pub use improve::{coordinate_descent, upper_bound_span, upper_bound_span_randomized, DescentResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use fjs_core::job::{Instance, Job};
    use proptest::prelude::*;

    /// Random small integer instance: n ≤ 5 jobs, horizon ≤ ~14.
    fn small_int_instance() -> impl Strategy<Value = Instance> {
        prop::collection::vec((0i64..8, 0i64..5, 1i64..5), 1..=5).prop_map(|trips| {
            Instance::new(
                trips
                    .into_iter()
                    .map(|(a, lax, p)| Job::adp(a as f64, (a + lax) as f64, p as f64))
                    .collect(),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn dp_matches_exhaustive(inst in small_int_instance()) {
            let dp = optimal_span_dp(&inst).unwrap();
            let ex = optimal_span_exhaustive(&inst).unwrap();
            prop_assert_eq!(dp, ex);
        }

        #[test]
        fn lower_bounds_never_exceed_optimum(inst in small_int_instance()) {
            let opt = optimal_span_dp(&inst).unwrap();
            prop_assert!(best_lower_bound(&inst) <= opt,
                "LB {} > OPT {} on {:?}", best_lower_bound(&inst), opt, inst);
        }

        #[test]
        fn upper_bounds_never_undershoot_optimum(inst in small_int_instance()) {
            let opt = optimal_span_dp(&inst).unwrap();
            let ub = upper_bound_span(&inst, 50);
            prop_assert!(ub.span >= opt);
            prop_assert!(ub.schedule.validate(&inst).is_ok());
        }

        #[test]
        fn chain_bound_is_monotone_under_job_removal(inst in small_int_instance()) {
            // Removing a job cannot increase the chain bound.
            let full = lb_chain(&inst);
            for skip in 0..inst.len() {
                let reduced: Instance = inst
                    .jobs()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, j)| *j)
                    .collect();
                prop_assert!(lb_chain(&reduced) <= full);
            }
        }
    }
}
