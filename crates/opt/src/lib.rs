//! # fjs-opt
//!
//! Offline optimal baselines for flexible job scheduling:
//!
//! * [`exact`] — exact optimal span for small integer instances (memoized
//!   search + independent brute force), the ground truth for experiment E10;
//! * [`bounds`] — certified polynomial-time lower bounds on the optimal
//!   span (never-overlappable chains, mandatory parts), used whenever exact
//!   optimization is infeasible;
//! * [`improve`] — coordinate-descent upper bounds (feasible schedules),
//!   bracketing OPT from above;
//! * [`cache`] — a process-wide memo table fronting the exact DP, keyed by
//!   a translation/scale/permutation-canonical fingerprint, shared by the
//!   conformance oracles and the exhaustive validation sweeps.
//!
//! For any instance: `bounds::best_lower_bound ≤ span_min ≤
//! improve::upper_bound_span`, with equality of the outer two on many easy
//! families (verified by property tests).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod cache;
pub mod exact;
pub mod improve;

pub use bounds::{best_lower_bound, lb_chain, lb_mandatory, lb_max_length, lb_uniform_windows};
pub use cache::{cached_optimal_span_dp, CacheStats};
pub use exact::{
    fits_dp, fits_exhaustive, is_integral, optimal_schedule_dp, optimal_span_dp,
    optimal_span_exhaustive, ExactError,
};
pub use improve::{
    coordinate_descent, upper_bound_span, upper_bound_span_randomized, DescentResult,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use fjs_core::job::{Instance, Job};
    use fjs_prng::{check, SmallRng};

    /// Random small integer instance: n ≤ 5 jobs, horizon ≤ ~14.
    fn small_int_instance(rng: &mut SmallRng) -> Instance {
        let n = rng.usize_range(1, 6);
        Instance::new(
            (0..n)
                .map(|_| {
                    let a = rng.u64_below(8) as f64;
                    let lax = rng.u64_below(5) as f64;
                    let p = 1.0 + rng.u64_below(4) as f64;
                    Job::adp(a, a + lax, p)
                })
                .collect(),
        )
    }

    #[test]
    fn dp_matches_exhaustive() {
        check::forall(64, |rng| {
            let inst = small_int_instance(rng);
            let dp = optimal_span_dp(&inst).unwrap();
            let ex = optimal_span_exhaustive(&inst).unwrap();
            assert_eq!(dp, ex);
        });
    }

    #[test]
    fn lower_bounds_never_exceed_optimum() {
        check::forall(64, |rng| {
            let inst = small_int_instance(rng);
            let opt = optimal_span_dp(&inst).unwrap();
            assert!(
                best_lower_bound(&inst) <= opt,
                "LB {} > OPT {} on {:?}",
                best_lower_bound(&inst),
                opt,
                inst
            );
        });
    }

    #[test]
    fn upper_bounds_never_undershoot_optimum() {
        check::forall(64, |rng| {
            let inst = small_int_instance(rng);
            let opt = optimal_span_dp(&inst).unwrap();
            let ub = upper_bound_span(&inst, 50);
            assert!(ub.span >= opt);
            assert!(ub.schedule.validate(&inst).is_ok());
        });
    }

    #[test]
    fn uniform_windows_matches_chain_and_respects_optimum() {
        check::forall(64, |rng| {
            // Uniform small instance: one common length, random windows.
            let n = rng.usize_range(1, 6);
            let p = 1.0 + rng.u64_below(3) as f64;
            let inst = Instance::new(
                (0..n)
                    .map(|_| {
                        let a = rng.u64_below(8) as f64;
                        let lax = rng.u64_below(5) as f64;
                        Job::adp(a, a + lax, p)
                    })
                    .collect(),
            );
            let win = lb_uniform_windows(&inst);
            // The chain condition is expanded-window disjointness, so on
            // equal lengths the two bounds coincide exactly.
            assert_eq!(win, lb_chain(&inst), "on {inst:?}");
            let opt = optimal_span_dp(&inst).unwrap();
            assert!(win <= opt, "LB {win} > OPT {opt} on {inst:?}");
        });
    }

    #[test]
    fn chain_bound_is_monotone_under_job_removal() {
        check::forall(64, |rng| {
            let inst = small_int_instance(rng);
            // Removing a job cannot increase the chain bound.
            let full = lb_chain(&inst);
            for skip in 0..inst.len() {
                let reduced: Instance = inst
                    .jobs()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, j)| *j)
                    .collect();
                assert!(lb_chain(&reduced) <= full);
            }
        });
    }
}
