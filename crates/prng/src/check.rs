//! Minimal `forall`-style property harness.
//!
//! Each case gets its own [`SmallRng`] derived from a base
//! seed and the case index, so a failing case is reproducible in isolation:
//! rerun with [`forall_seeded`] passing the printed base seed and start at
//! the printed case index.
//!
//! Properties signal failure by panicking (use `assert!`/`assert_eq!` as in
//! any test); the harness wraps each case so the panic message is prefixed
//! with the case number and seed before propagating.

use crate::SmallRng;

/// Default base seed for [`forall`]. Fixed so test runs are deterministic.
pub const DEFAULT_BASE_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

/// Runs `f` for `cases` independently-seeded cases with the default base
/// seed. Panics (propagating the property's own panic) on the first failing
/// case, after printing the case index and seed for reproduction.
pub fn forall(cases: usize, f: impl FnMut(&mut SmallRng)) {
    forall_seeded(DEFAULT_BASE_SEED, cases, f);
}

/// [`forall`] with an explicit base seed.
pub fn forall_seeded(base_seed: u64, cases: usize, mut f: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let seed = case_seed(base_seed, case);
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} \
                 (base_seed={base_seed:#x}, case_seed={seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Derives the per-case seed: a SplitMix64-style mix of base seed and index,
/// so neighbouring cases get unrelated streams.
pub fn case_seed(base_seed: u64, case: usize) -> u64 {
    let mut z = base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        let mut count = 0;
        forall(50, |_| count += 1);
        assert_eq!(count, 50);
    }

    #[test]
    fn cases_get_distinct_seeds() {
        let seeds: Vec<u64> = (0..100).map(|c| case_seed(DEFAULT_BASE_SEED, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn failing_case_propagates_panic() {
        let result = std::panic::catch_unwind(|| {
            forall(10, |rng| {
                // Fails eventually: a u64 below 4 hits 3 within 10 cases.
                assert_ne!(rng.u64_below(4), 3);
            });
        });
        assert!(result.is_err());
    }
}
