//! # fjs-prng
//!
//! A self-contained deterministic random number generator plus a minimal
//! property-testing harness. The workspace builds offline with zero external
//! dependencies; this crate supplies the two things third-party crates were
//! previously used for:
//!
//! * [`SmallRng`] — a seeded xoshiro256++ generator (Blackman & Vigna) with
//!   the small API surface the workloads and tests actually need;
//! * [`check`] — `forall`-style property execution with per-case seeds, so
//!   failures print a reproducible case number.
//!
//! Determinism is load-bearing: the same seed must produce the same stream
//! on every platform, forever, because experiment tables and regression
//! tests shard by seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;

/// A small, fast, seedable PRNG: xoshiro256++ with SplitMix64 seeding.
///
/// Not cryptographic. Statistically solid for simulation workloads, 2²⁵⁶−1
/// period, and trivially portable (pure integer arithmetic).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion, the
    /// reference seeding procedure — any seed, including 0, is fine).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo < hi` and both finite.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
        let v = lo + self.f64_unit() * (hi - lo);
        // Guard against rounding up to `hi` when the width underflows.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Uniform `f64` in `[lo, hi]`. Requires `lo <= hi` and both finite.
    pub fn f64_range_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi && lo.is_finite() && hi.is_finite());
        if lo == hi {
            return lo;
        }
        lo + self.f64_unit() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Uniform integer in `[0, n)`. Requires `n > 0`. Uses Lemire's
    /// widening-multiply rejection method (unbiased).
    pub fn u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`. Requires `lo < hi`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.u64_below((hi - lo) as u64) as usize
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty());
        &items[self.usize_range(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = rng.f64_unit();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&lo_half), "biased: {lo_half}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.f64_range(3.0, 5.0);
            assert!((3.0..5.0).contains(&v));
            let w = rng.f64_range_inclusive(3.0, 5.0);
            assert!((3.0..=5.0).contains(&w));
            let n = rng.u64_below(10);
            assert!(n < 10);
            let i = rng.usize_range(4, 7);
            assert!((4..7).contains(&i));
        }
        assert_eq!(rng.f64_range_inclusive(2.0, 2.0), 2.0);
    }

    #[test]
    fn u64_below_covers_all_residues() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.u64_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing residues: {seen:?}");
    }

    #[test]
    fn bool_with_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.bool_with(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(rng.choose(&items) / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
