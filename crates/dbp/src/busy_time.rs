//! Bounded-capacity **busy-time scheduling**: the machine model of the
//! related busy-time literature the paper builds on (Shalom et al. \[22\],
//! Khandekar et al. \[11\], Koehler & Khuller \[12\]). Each machine runs at
//! most `g` jobs concurrently; a machine accrues busy time whenever at
//! least one job runs on it; the objective is total busy time over all
//! machines.
//!
//! This is the `g`-slot specialization of MinUsageTime DBP (items of size
//! `1/g`), provided as a dedicated API because the busy-time papers state
//! their bounds in terms of `g`:
//!
//! * `busy_time ≥ max(span, total_work / g)` for every assignment;
//! * with unbounded `g`, busy time degenerates to the span — exactly the
//!   equivalence the paper's concluding remarks use to relate Clairvoyant
//!   FJS to Koehler–Khuller's unbounded-capacity case.

use crate::packing::{pack, Item, Packer, Packing};
use fjs_core::interval::Interval;
use fjs_core::job::Instance;
use fjs_core::schedule::Schedule;
use fjs_core::time::Dur;

/// Result of assigning a schedule's active intervals to `g`-slot machines.
#[derive(Clone, Debug)]
pub struct BusyTimeOutcome {
    /// Machine capacity (jobs per machine).
    pub g: usize,
    /// Total busy time over all machines.
    pub total_busy_time: Dur,
    /// Number of machines used.
    pub machines: usize,
    /// The certified lower bound `max(span, work/g)`.
    pub lower_bound: Dur,
    /// The underlying packing (one bin per machine).
    pub packing: Packing,
}

/// Assigns the active intervals of a complete schedule to machines of
/// capacity `g` using First Fit, and accounts the total busy time.
///
/// # Panics
/// Panics if `g == 0` or the schedule is incomplete.
pub fn assign_busy_time(inst: &Instance, schedule: &Schedule, g: usize) -> BusyTimeOutcome {
    assert!(g >= 1, "machine capacity must be at least 1");
    let size = 1.0 / g as f64;
    let items: Vec<Item> = inst
        .iter()
        .map(|(id, job)| {
            let s = schedule
                .start(id)
                .expect("busy-time needs a complete schedule");
            Item::new(job.active_interval_at(s), size)
        })
        .collect();
    let packing = pack(&items, Packer::FirstFit);
    let span = schedule.span(inst);
    let lower_bound = span.max(inst.total_work() / g as f64);
    BusyTimeOutcome {
        g,
        total_busy_time: packing.total_usage,
        machines: packing.num_bins(),
        lower_bound,
        packing,
    }
}

/// The busy-time lower bound `max(span-of-intervals, Σ len / g)` for an
/// arbitrary interval multiset (no schedule needed).
pub fn busy_time_lower_bound(intervals: &[Interval], g: usize) -> Dur {
    assert!(g >= 1, "machine capacity must be at least 1");
    let span: Dur = intervals
        .iter()
        .copied()
        .collect::<fjs_core::interval::IntervalSet>()
        .measure();
    let work: Dur = intervals.iter().map(|iv| iv.len()).sum();
    span.max(work / g as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::{Job, JobId};
    use fjs_core::time::{dur, t};

    fn stacked_instance() -> (Instance, Schedule) {
        // Four unit jobs all runnable at t=10.
        let jobs: Vec<Job> = (0..4).map(|i| Job::adp(i as f64, 10.0, 1.0)).collect();
        let inst = Instance::new(jobs);
        let s = Schedule::from_starts(4, (0..4u32).map(|i| (JobId(i), t(10.0))));
        (inst, s)
    }

    #[test]
    fn capacity_one_means_one_job_per_machine() {
        let (inst, s) = stacked_instance();
        let out = assign_busy_time(&inst, &s, 1);
        assert_eq!(out.machines, 4);
        assert_eq!(out.total_busy_time, dur(4.0));
        assert_eq!(out.lower_bound, dur(4.0), "work/1 dominates");
    }

    #[test]
    fn large_capacity_degenerates_to_span() {
        let (inst, s) = stacked_instance();
        let out = assign_busy_time(&inst, &s, 8);
        assert_eq!(out.machines, 1);
        assert_eq!(out.total_busy_time, s.span(&inst));
        assert_eq!(out.total_busy_time, dur(1.0));
    }

    #[test]
    fn capacity_two_splits_evenly() {
        let (inst, s) = stacked_instance();
        let out = assign_busy_time(&inst, &s, 2);
        assert_eq!(out.machines, 2);
        assert_eq!(out.total_busy_time, dur(2.0));
        assert_eq!(out.lower_bound, dur(2.0));
    }

    #[test]
    fn busy_time_always_at_least_lower_bound() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::adp((i % 7) as f64, (i % 7) as f64 + 5.0, 1.0 + (i % 3) as f64))
            .collect();
        let inst = Instance::new(jobs);
        let s = Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.deadline())));
        for g in [1, 2, 3, 5, 50] {
            let out = assign_busy_time(&inst, &s, g);
            assert!(
                out.total_busy_time >= out.lower_bound - dur(1e-9),
                "g={g}: {} < {}",
                out.total_busy_time,
                out.lower_bound
            );
            // Monotone in g: more capacity never hurts the bound.
            if g > 1 {
                let prev = assign_busy_time(&inst, &s, g - 1);
                assert!(out.lower_bound <= prev.lower_bound + dur(1e-9));
            }
        }
    }

    #[test]
    fn interval_lower_bound_standalone() {
        let ivs = vec![
            Interval::new(t(0.0), t(4.0)),
            Interval::new(t(0.0), t(4.0)),
            Interval::new(t(0.0), t(4.0)),
        ];
        // span 4, work 12: g=2 → max(4, 6) = 6; g=4 → max(4, 3) = 4.
        assert_eq!(busy_time_lower_bound(&ivs, 2), dur(6.0));
        assert_eq!(busy_time_lower_bound(&ivs, 4), dur(4.0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let (inst, s) = stacked_instance();
        let _ = assign_busy_time(&inst, &s, 0);
    }
}
