//! # fjs-dbp
//!
//! The MinUsageTime **Dynamic Bin Packing** substrate behind the paper's
//! Section 5 extension. Items (jobs with sizes) occupy unit-capacity bins
//! (cloud servers) over their active intervals; the objective is the total
//! time bins are "on". Combining a span scheduler (Batch+/Profit) with
//! First Fit packing generalizes MinUsageTime DBP to flexible jobs:
//! the scheduler controls the span term of the usage bound, the packer the
//! demand term.
//!
//! * [`packing`] — First Fit and classify-by-duration First Fit, usage
//!   accounting, capacity verification, certified usage lower bounds;
//! * [`pipeline`] — glue from instances/schedules/simulation outcomes to
//!   packable items.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod busy_time;
pub mod packing;
pub mod pipeline;

pub use busy_time::{assign_busy_time, busy_time_lower_bound, BusyTimeOutcome};
pub use packing::{pack, usage_lower_bound, verify_capacity, Bin, Item, Packer, Packing};
pub use pipeline::{
    arrival_schedule, deadline_schedule, deterministic_sizes, outcome_items, pack_schedule,
    PipelineOutcome,
};
