//! MinUsageTime Dynamic Bin Packing: items with residency intervals and
//! sizes are packed into unit-capacity bins; a bin accrues *usage time*
//! whenever it holds at least one item; the objective is the total usage
//! time over all bins.
//!
//! This is the substrate for the paper's Section 5 extension: a span
//! scheduler decides each job's active interval, then a packing policy
//! decides which server (bin) runs it. Two policies from the cited line of
//! work are implemented:
//!
//! * [`Packer::FirstFit`] — place each item, in order of start time, into
//!   the earliest-opened bin whose load at that moment stays within
//!   capacity (near-optimal `O(μ)`-competitive non-clairvoyantly \[20, 23\]);
//! * [`Packer::ClassifiedFirstFit`] — First Fit within duration classes
//!   (geometric classes of ratio `alpha`), the `O(log μ)`-competitive
//!   clairvoyant strategy of \[19\].

use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An item to pack: a residency interval (the job's active interval) and a
/// size (resource demand), `0 < size <= 1`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Item {
    /// Residency interval `[start, end)`.
    pub interval: Interval,
    /// Resource demand as a fraction of bin capacity.
    pub size: f64,
}

impl Item {
    /// Creates an item.
    ///
    /// # Panics
    /// Panics unless `0 < size <= 1` and the interval is non-empty.
    pub fn new(interval: Interval, size: f64) -> Self {
        assert!(
            size > 0.0 && size <= 1.0,
            "size must be in (0, 1], got {size}"
        );
        assert!(!interval.is_empty(), "item interval must be non-empty");
        Item { interval, size }
    }
}

/// The packing policy.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Packer {
    /// Plain First Fit over all items (earliest-opened feasible bin).
    FirstFit,
    /// Best Fit: the feasible bin with the highest current load (the
    /// tightest remaining capacity).
    BestFit,
    /// Next Fit: only the most recently opened bin is considered.
    NextFit,
    /// First Fit within geometric duration classes: an item of duration
    /// `len` belongs to class `ceil(log_alpha(len / base))`, and bins are
    /// dedicated to one class each — the `O(log μ)`-competitive strategy
    /// of \[19\].
    ClassifiedFirstFit {
        /// Class ratio (`> 1`).
        alpha: f64,
        /// Base duration (`> 0`).
        base: f64,
    },
}

impl Packer {
    fn class_of(&self, len: Dur) -> Option<i64> {
        match *self {
            Packer::FirstFit | Packer::BestFit | Packer::NextFit => None,
            Packer::ClassifiedFirstFit { alpha, base } => {
                assert!(
                    alpha > 1.0 && base > 0.0,
                    "invalid classified first fit parameters"
                );
                let x = (len.get() / base).ln() / alpha.ln();
                let snapped = x.round();
                Some(if (x - snapped).abs() < 1e-9 {
                    snapped as i64
                } else {
                    x.ceil() as i64
                })
            }
        }
    }
}

/// One bin of the packing.
#[derive(Clone, Debug)]
pub struct Bin {
    /// Duration class (for classified packing), `None` for plain First Fit.
    pub class: Option<i64>,
    /// Indices (into the input item slice) of items placed in this bin.
    pub items: Vec<usize>,
    /// Union of the residency intervals of the items.
    pub residency: IntervalSet,
    /// Active items as `(end, size)` orderable by end (internal sweep
    /// state).
    active: BinaryHeap<Reverse<(Time, usize)>>,
    /// Current load during the sweep.
    load: f64,
    /// Sizes of items by heap token (parallel to `items`).
    sizes: Vec<f64>,
}

impl Bin {
    fn new(class: Option<i64>) -> Self {
        Bin {
            class,
            items: Vec::new(),
            residency: IntervalSet::new(),
            active: BinaryHeap::new(),
            load: 0.0,
            sizes: Vec::new(),
        }
    }

    /// Drops departed items as of time `t` (half-open: an item ending at
    /// `t` is gone at `t`).
    fn settle(&mut self, t: Time) {
        while let Some(&Reverse((end, tok))) = self.active.peek() {
            if end <= t {
                self.active.pop();
                self.load -= self.sizes[tok];
            } else {
                break;
            }
        }
        if self.load < 1e-12 {
            self.load = self.load.max(0.0);
        }
    }

    fn fits(&self, size: f64) -> bool {
        self.load + size <= 1.0 + 1e-9
    }

    fn place(&mut self, item_idx: usize, item: Item) {
        let tok = self.sizes.len();
        self.sizes.push(item.size);
        self.items.push(item_idx);
        self.active.push(Reverse((item.interval.hi(), tok)));
        self.load += item.size;
        self.residency.insert(item.interval);
    }

    /// Usage time of this bin (measure of its residency set).
    pub fn usage(&self) -> Dur {
        self.residency.measure()
    }
}

/// The result of packing a set of items.
#[derive(Clone, Debug)]
pub struct Packing {
    /// The bins, in open order.
    pub bins: Vec<Bin>,
    /// Total usage time `Σ_bins usage`.
    pub total_usage: Dur,
}

impl Packing {
    /// Number of bins opened.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }
}

/// Packs `items` with the given policy, processing items in order of start
/// time (ties by index), as an online packer would observe them.
///
/// ```
/// use fjs_core::interval::Interval;
/// use fjs_core::time::{t, dur};
/// use fjs_dbp::{pack, Item, Packer};
///
/// let items = [
///     Item::new(Interval::new(t(0.0), t(4.0)), 0.5),
///     Item::new(Interval::new(t(1.0), t(3.0)), 0.5), // shares the bin
///     Item::new(Interval::new(t(1.0), t(2.0)), 0.5), // overflows → bin 2
/// ];
/// let packing = pack(&items, Packer::FirstFit);
/// assert_eq!(packing.num_bins(), 2);
/// assert_eq!(packing.total_usage, dur(4.0 + 1.0));
/// ```
pub fn pack(items: &[Item], packer: Packer) -> Packing {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[a]
            .interval
            .lo()
            .cmp(&items[b].interval.lo())
            .then(a.cmp(&b))
    });

    let mut bins: Vec<Bin> = Vec::new();
    for idx in order {
        let item = items[idx];
        let class = packer.class_of(item.interval.len());
        let t = item.interval.lo();
        // Settle departures up to t in the candidate bins, then place per
        // policy.
        let choice: Option<usize> = match packer {
            Packer::FirstFit | Packer::ClassifiedFirstFit { .. } => {
                let mut found = None;
                for (i, bin) in bins.iter_mut().enumerate() {
                    if bin.class != class {
                        continue;
                    }
                    bin.settle(t);
                    if bin.fits(item.size) {
                        found = Some(i);
                        break;
                    }
                }
                found
            }
            Packer::BestFit => {
                let mut best: Option<(usize, f64)> = None;
                for (i, bin) in bins.iter_mut().enumerate() {
                    bin.settle(t);
                    if bin.fits(item.size) && best.is_none_or(|(_, load)| bin.load > load) {
                        best = Some((i, bin.load));
                    }
                }
                best.map(|(i, _)| i)
            }
            Packer::NextFit => {
                let last = bins.len().checked_sub(1);
                last.filter(|&i| {
                    let bin = &mut bins[i];
                    bin.settle(t);
                    bin.fits(item.size)
                })
            }
        };
        match choice {
            Some(i) => bins[i].place(idx, item),
            None => {
                let mut bin = Bin::new(class);
                bin.place(idx, item);
                bins.push(bin);
            }
        }
    }

    let total_usage = bins.iter().map(|b| b.usage()).sum();
    Packing { bins, total_usage }
}

/// A certified lower bound on the total usage time of *any* packing:
/// `max(span, total item area)` — the bound the MinUsageTime DBP literature
/// builds on (usage is at least the span because some bin is on whenever any
/// item is resident, and at least the time-accumulated demand because bins
/// have unit capacity).
pub fn usage_lower_bound(items: &[Item]) -> Dur {
    let span: Dur = items
        .iter()
        .map(|i| i.interval)
        .collect::<IntervalSet>()
        .measure();
    let area: f64 = items.iter().map(|i| i.interval.len().get() * i.size).sum();
    span.max(Dur::new(area))
}

/// Verifies that no bin ever exceeds unit capacity (sweep over events).
/// Returns the first `(bin index, time, load)` violation, if any.
pub fn verify_capacity(items: &[Item], packing: &Packing) -> Option<(usize, Time, f64)> {
    for (b, bin) in packing.bins.iter().enumerate() {
        // Event sweep over this bin's items.
        let mut events: Vec<(Time, f64)> = Vec::new();
        for &idx in &bin.items {
            events.push((items[idx].interval.lo(), items[idx].size));
            events.push((items[idx].interval.hi(), -items[idx].size));
        }
        // Departures (negative) before arrivals at equal times.
        events.sort_by(|x, y| {
            x.0.cmp(&y.0)
                .then(x.1.partial_cmp(&y.1).expect("finite sizes"))
        });
        let mut load = 0.0;
        for (t, delta) in events {
            load += delta;
            if load > 1.0 + 1e-6 {
                return Some((b, t, load));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::time::t;

    fn item(lo: f64, hi: f64, size: f64) -> Item {
        Item::new(Interval::new(t(lo), t(hi)), size)
    }

    #[test]
    fn single_item_single_bin() {
        let items = [item(0.0, 5.0, 0.7)];
        let p = pack(&items, Packer::FirstFit);
        assert_eq!(p.num_bins(), 1);
        assert_eq!(p.total_usage, Dur::new(5.0));
        assert!(verify_capacity(&items, &p).is_none());
    }

    #[test]
    fn first_fit_shares_a_bin_when_it_fits() {
        let items = [item(0.0, 4.0, 0.5), item(1.0, 3.0, 0.5)];
        let p = pack(&items, Packer::FirstFit);
        assert_eq!(p.num_bins(), 1);
        assert_eq!(p.total_usage, Dur::new(4.0));
    }

    #[test]
    fn first_fit_opens_second_bin_on_overflow() {
        let items = [item(0.0, 4.0, 0.7), item(1.0, 3.0, 0.7)];
        let p = pack(&items, Packer::FirstFit);
        assert_eq!(p.num_bins(), 2);
        assert_eq!(p.total_usage, Dur::new(4.0 + 2.0));
        assert!(verify_capacity(&items, &p).is_none());
    }

    #[test]
    fn departures_free_capacity() {
        // Second item starts exactly when the first ends (half-open): fits.
        let items = [item(0.0, 2.0, 0.9), item(2.0, 4.0, 0.9)];
        let p = pack(&items, Packer::FirstFit);
        assert_eq!(p.num_bins(), 1);
        assert_eq!(p.total_usage, Dur::new(4.0));
    }

    #[test]
    fn classified_first_fit_separates_classes() {
        // Durations 1 and 10 land in different classes for alpha=2, base=1.
        let items = [item(0.0, 1.0, 0.3), item(0.0, 10.0, 0.3)];
        let p = pack(
            &items,
            Packer::ClassifiedFirstFit {
                alpha: 2.0,
                base: 1.0,
            },
        );
        assert_eq!(p.num_bins(), 2);
        assert_ne!(p.bins[0].class, p.bins[1].class);
    }

    #[test]
    fn classified_same_class_shares() {
        let items = [item(0.0, 3.0, 0.4), item(1.0, 4.5, 0.4)];
        let p = pack(
            &items,
            Packer::ClassifiedFirstFit {
                alpha: 2.0,
                base: 1.0,
            },
        );
        assert_eq!(p.num_bins(), 1);
    }

    #[test]
    fn usage_lower_bound_dominates_span_and_area() {
        let items = [item(0.0, 2.0, 1.0), item(0.0, 2.0, 1.0)];
        // span = 2, area = 4 → LB = 4. Any packing needs two bins of 2.
        assert_eq!(usage_lower_bound(&items), Dur::new(4.0));
        let p = pack(&items, Packer::FirstFit);
        assert!(p.total_usage >= usage_lower_bound(&items));
    }

    #[test]
    fn many_small_items_fill_one_bin() {
        let items: Vec<Item> = (0..10).map(|_| item(0.0, 1.0, 0.1)).collect();
        let p = pack(&items, Packer::FirstFit);
        assert_eq!(p.num_bins(), 1);
        assert_eq!(p.total_usage, Dur::new(1.0));
        assert!(verify_capacity(&items, &p).is_none());
    }

    #[test]
    fn capacity_verifier_catches_violation() {
        // Hand-build an infeasible packing.
        let items = [item(0.0, 2.0, 0.8), item(1.0, 3.0, 0.8)];
        let mut bin = Bin::new(None);
        bin.place(0, items[0]);
        bin.place(1, items[1]);
        let p = Packing {
            total_usage: bin.usage(),
            bins: vec![bin],
        };
        let v = verify_capacity(&items, &p);
        assert!(v.is_some());
        assert_eq!(v.unwrap().0, 0);
    }

    #[test]
    #[should_panic(expected = "size must be in")]
    fn oversize_item_rejected() {
        let _ = item(0.0, 1.0, 1.5);
    }

    #[test]
    fn best_fit_prefers_fuller_bin() {
        // Two open bins with loads 0.5 and 0.7; a 0.2 item fits both.
        // Best Fit must take the fuller bin, First Fit the earlier one.
        let items = [
            item(0.0, 10.0, 0.5), // bin 0
            item(0.0, 10.0, 0.7), // bin 1 (0.5 + 0.7 > 1)
            item(1.0, 5.0, 0.2),
        ];
        let p = pack(&items, Packer::BestFit);
        assert_eq!(p.num_bins(), 2);
        assert!(
            p.bins[1].items.contains(&2),
            "Best Fit picks the fuller bin"
        );
        let ff = pack(&items, Packer::FirstFit);
        assert!(
            ff.bins[0].items.contains(&2),
            "First Fit picks the earlier bin"
        );
    }

    #[test]
    fn next_fit_ignores_earlier_bins() {
        let items = [
            item(0.0, 10.0, 0.5), // bin 0
            item(0.0, 10.0, 0.7), // bin 1 (doesn't fit bin 0)
            item(1.0, 5.0, 0.4),  // fits bin 0, but NF only sees bin 1 → bin 2
        ];
        let p = pack(&items, Packer::NextFit);
        assert_eq!(p.num_bins(), 3);
        let ff = pack(&items, Packer::FirstFit);
        assert_eq!(ff.num_bins(), 2);
    }

    #[test]
    fn all_policies_capacity_safe_on_mixed_items() {
        let items: Vec<Item> = (0..60)
            .map(|i| {
                let lo = (i * 7 % 50) as f64;
                let len = 1.0 + (i % 5) as f64;
                let size = 0.15 + 0.1 * ((i % 7) as f64);
                item(lo, lo + len, size)
            })
            .collect();
        for packer in [
            Packer::FirstFit,
            Packer::BestFit,
            Packer::NextFit,
            Packer::ClassifiedFirstFit {
                alpha: 2.0,
                base: 1.0,
            },
        ] {
            let p = pack(&items, packer);
            assert!(verify_capacity(&items, &p).is_none(), "{packer:?}");
            assert!(p.total_usage >= usage_lower_bound(&items), "{packer:?}");
            let placed: usize = p.bins.iter().map(|b| b.items.len()).sum();
            assert_eq!(placed, items.len(), "{packer:?}");
        }
    }
}
