//! The generalized MinUsageTime DBP pipeline of Section 5: a span
//! scheduler chooses start times for flexible jobs, then a packing policy
//! assigns the resulting active intervals to unit-capacity bins.

use crate::packing::{pack, usage_lower_bound, verify_capacity, Item, Packer, Packing};
use fjs_core::job::{Instance, JobId};
use fjs_core::schedule::Schedule;
use fjs_core::time::Dur;

/// Outcome of scheduling + packing one instance.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// Span of the schedule (scheduler's objective).
    pub span: Dur,
    /// Total bin usage time (the DBP objective).
    pub total_usage: Dur,
    /// Number of bins (servers) opened.
    pub num_bins: usize,
    /// Certified lower bound on the usage of any packing *of this
    /// schedule's intervals* (max of span and time-accumulated demand).
    pub usage_lb: Dur,
}

/// Packs a schedule's active intervals with the given sizes.
///
/// # Panics
/// Panics if the schedule is incomplete/mismatched, `sizes` has the wrong
/// length, any size is outside `(0, 1]`, or the packing violates capacity
/// (which would indicate a packer bug).
pub fn pack_schedule(
    inst: &Instance,
    schedule: &Schedule,
    sizes: &[f64],
    packer: Packer,
) -> PipelineOutcome {
    assert_eq!(sizes.len(), inst.len(), "one size per job");
    let items: Vec<Item> = inst
        .iter()
        .map(|(id, job)| {
            let s = schedule.start(id).expect("schedule must be complete");
            Item::new(job.active_interval_at(s), sizes[id.index()])
        })
        .collect();
    let packing: Packing = pack(&items, packer);
    assert!(
        verify_capacity(&items, &packing).is_none(),
        "packer produced a capacity violation"
    );
    PipelineOutcome {
        span: schedule.span(inst),
        total_usage: packing.total_usage,
        num_bins: packing.num_bins(),
        usage_lb: usage_lower_bound(&items),
    }
}

/// Deterministic pseudo-random sizes in `[min, max]` (splitmix64-based; no
/// external RNG dependency so the crate stays `fjs-core`-only).
///
/// # Panics
/// Panics unless `0 < min <= max <= 1`.
pub fn deterministic_sizes(n: usize, min: f64, max: f64, seed: u64) -> Vec<f64> {
    assert!(
        min > 0.0 && min <= max && max <= 1.0,
        "need 0 < min <= max <= 1"
    );
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            min + u * (max - min)
        })
        .collect()
}

/// Convenience: start every job at its deadline ("all-lazy" reference
/// schedule) — used in tests and as a packing-only baseline where the span
/// scheduler is degenerate.
pub fn deadline_schedule(inst: &Instance) -> Schedule {
    Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.deadline())))
}

/// Convenience: start every job at its arrival (the *rigid* reference —
/// what prior busy-time work assumes).
pub fn arrival_schedule(inst: &Instance) -> Schedule {
    Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.arrival())))
}

/// Relabels a simulation outcome's schedule so it can be packed: the
/// engine's outcome instance is already in release order with a complete
/// schedule, so this is just a typed passthrough that revalidates.
pub fn outcome_items(outcome: &fjs_core::sim::SimOutcome, sizes: &[f64]) -> Vec<Item> {
    assert_eq!(sizes.len(), outcome.instance.len());
    outcome
        .instance
        .iter()
        .map(|(id, job)| {
            let s = outcome
                .schedule
                .start(id)
                .expect("outcome schedules are complete");
            Item::new(job.active_interval_at(s), sizes[id.index()])
        })
        .collect()
}

/// Index of the first job (by id) a packing placed in each bin — handy for
/// reporting.
pub fn bin_leaders(packing: &Packing) -> Vec<JobId> {
    packing
        .bins
        .iter()
        .map(|b| JobId(*b.items.first().expect("bins are non-empty") as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::job::Job;
    use fjs_core::time::dur;

    fn inst() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 5.0, 2.0),
            Job::adp(1.0, 5.0, 2.0),
            Job::adp(2.0, 5.0, 2.0),
        ])
    }

    #[test]
    fn stacked_schedule_minimizes_span_but_needs_more_bins() {
        let inst = inst();
        let sizes = vec![0.6, 0.6, 0.6];
        // All at deadline 5: span 2, but three bins (sizes don't share).
        let stacked = deadline_schedule(&inst);
        let out = pack_schedule(&inst, &stacked, &sizes, Packer::FirstFit);
        assert_eq!(out.span, dur(2.0));
        assert_eq!(out.num_bins, 3);
        assert_eq!(out.total_usage, dur(6.0));

        // Eager: span 4 ([0,4)), staggered enough that bins reuse…
        let eager = arrival_schedule(&inst);
        let out2 = pack_schedule(&inst, &eager, &sizes, Packer::FirstFit);
        assert_eq!(out2.span, dur(4.0));
        // [0,2), [1,3), [2,4): J0 and J2 share bin 0 (J0 departs at 2).
        assert_eq!(out2.num_bins, 2);
        assert_eq!(out2.total_usage, dur(4.0 + 2.0));
    }

    #[test]
    fn usage_lb_is_respected() {
        let inst = inst();
        let sizes = vec![1.0, 1.0, 1.0];
        let out = pack_schedule(&inst, &deadline_schedule(&inst), &sizes, Packer::FirstFit);
        assert!(out.total_usage >= out.usage_lb);
        // Full-size jobs: area = 6 = usage.
        assert_eq!(out.usage_lb, dur(6.0));
        assert_eq!(out.total_usage, dur(6.0));
    }

    #[test]
    fn deterministic_sizes_reproducible_and_bounded() {
        let a = deterministic_sizes(100, 0.1, 0.9, 7);
        let b = deterministic_sizes(100, 0.1, 0.9, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| (0.1..=0.9).contains(&s)));
        let c = deterministic_sizes(100, 0.1, 0.9, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn pipeline_with_simulated_scheduler() {
        use fjs_core::prelude::*;
        struct EagerTest;
        impl OnlineScheduler for EagerTest {
            fn name(&self) -> String {
                "eager".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start(job.id);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
        }
        let inst = inst();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, EagerTest);
        let sizes = deterministic_sizes(out.instance.len(), 0.3, 0.3, 1);
        let items = outcome_items(&out, &sizes);
        let p = pack(&items, Packer::FirstFit);
        assert_eq!(p.num_bins(), 1, "three 0.3-sized jobs share one bin");
        assert!(crate::packing::verify_capacity(&items, &p).is_none());
        assert_eq!(bin_leaders(&p), vec![JobId(0)]);
    }

    #[test]
    #[should_panic(expected = "one size per job")]
    fn size_arity_checked() {
        let inst = inst();
        let _ = pack_schedule(&inst, &deadline_schedule(&inst), &[0.5], Packer::FirstFit);
    }
}
