//! Deterministic instance generation from a [`WorkloadSpec`].

use crate::distributions::{ArrivalProcess, LaxityModel, LengthLaw};
use fjs_core::job::{Instance, Job};
use fjs_prng::SmallRng;

/// A complete description of a synthetic workload.
///
/// ```
/// use fjs_workloads::{ArrivalProcess, LaxityModel, LengthLaw, WorkloadSpec};
///
/// let spec = WorkloadSpec {
///     n: 100,
///     arrivals: ArrivalProcess::Poisson { rate: 1.0 },
///     lengths: LengthLaw::Uniform { min: 1.0, max: 4.0 },
///     laxity: LaxityModel::Proportional { factor: 2.0 },
/// };
/// let a = spec.generate(7);
/// let b = spec.generate(7);
/// assert_eq!(a, b, "same seed → identical instance");
/// assert_eq!(a.len(), 100);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub n: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Processing-length law.
    pub lengths: LengthLaw,
    /// Laxity model.
    pub laxity: LaxityModel,
}

impl WorkloadSpec {
    /// Materializes the workload with the given seed. Same `(spec, seed)` →
    /// same instance, bit for bit.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let arrivals = self.arrivals.sample(self.n, &mut rng);
        let jobs: Vec<Job> = arrivals
            .into_iter()
            .map(|a| {
                let p = self.lengths.sample(&mut rng);
                let lax = self.laxity.sample(p, &mut rng);
                Job::adp(a, a + lax, p)
            })
            .collect();
        Instance::new(jobs)
    }
}

/// Named workload families used across experiments (E5, E7, E8, E9).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Cloud batch: Poisson arrivals, heavy-tailed lengths, laxity
    /// proportional to length (jobs tolerate waiting about as long as they
    /// run) — the pay-as-you-go motivation of the paper's introduction.
    CloudBatch,
    /// Bursty analytics: bursts of simultaneous submissions, bimodal
    /// lengths, generous constant laxity.
    BurstyAnalytics,
    /// Rigid legacy: zero laxity (the model of prior busy-time work \[22\]).
    RigidLegacy,
    /// Slack-rich maintenance: sparse arrivals with enormous laxities;
    /// stacking potential is maximal.
    SlackRich,
    /// Near-uniform service: uniform lengths in a narrow band (small μ).
    UniformService,
    /// Diurnal cloud: sinusoidal submission intensity (day/night cycle),
    /// heavy-tailed lengths, proportional laxity.
    DiurnalCloud,
}

impl Scenario {
    /// All scenarios.
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::CloudBatch,
            Scenario::BurstyAnalytics,
            Scenario::RigidLegacy,
            Scenario::SlackRich,
            Scenario::UniformService,
            Scenario::DiurnalCloud,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::CloudBatch => "cloud-batch",
            Scenario::BurstyAnalytics => "bursty-analytics",
            Scenario::RigidLegacy => "rigid-legacy",
            Scenario::SlackRich => "slack-rich",
            Scenario::UniformService => "uniform-service",
            Scenario::DiurnalCloud => "diurnal-cloud",
        }
    }

    /// The workload spec for `n` jobs.
    pub fn spec(&self, n: usize) -> WorkloadSpec {
        match self {
            Scenario::CloudBatch => WorkloadSpec {
                n,
                arrivals: ArrivalProcess::Poisson { rate: 1.0 },
                lengths: LengthLaw::BoundedPareto {
                    min: 1.0,
                    max: 64.0,
                    shape: 1.2,
                },
                laxity: LaxityModel::Proportional { factor: 1.0 },
            },
            Scenario::BurstyAnalytics => WorkloadSpec {
                n,
                arrivals: ArrivalProcess::Bursty {
                    burst_size: 8,
                    rate: 0.25,
                },
                lengths: LengthLaw::Bimodal {
                    short: 1.0,
                    long: 16.0,
                    p_long: 0.2,
                },
                laxity: LaxityModel::Constant { value: 20.0 },
            },
            Scenario::RigidLegacy => WorkloadSpec {
                n,
                arrivals: ArrivalProcess::Poisson { rate: 0.5 },
                lengths: LengthLaw::Uniform { min: 1.0, max: 8.0 },
                laxity: LaxityModel::Rigid,
            },
            Scenario::SlackRich => WorkloadSpec {
                n,
                arrivals: ArrivalProcess::Poisson { rate: 0.2 },
                lengths: LengthLaw::Uniform { min: 1.0, max: 4.0 },
                laxity: LaxityModel::Uniform {
                    min: 50.0,
                    max: 500.0,
                },
            },
            Scenario::UniformService => WorkloadSpec {
                n,
                arrivals: ArrivalProcess::Uniform { gap: 0.5 },
                lengths: LengthLaw::Uniform { min: 2.0, max: 3.0 },
                laxity: LaxityModel::Proportional { factor: 2.0 },
            },
            Scenario::DiurnalCloud => WorkloadSpec {
                n,
                arrivals: ArrivalProcess::Diurnal {
                    base_rate: 1.0,
                    amplitude: 0.9,
                    period: 50.0,
                },
                lengths: LengthLaw::BoundedPareto {
                    min: 1.0,
                    max: 32.0,
                    shape: 1.3,
                },
                laxity: LaxityModel::Proportional { factor: 1.5 },
            },
        }
    }

    /// Generates the scenario's instance.
    pub fn generate(&self, n: usize, seed: u64) -> Instance {
        self.spec(n).generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = Scenario::CloudBatch.spec(200);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a, b);
        let c = spec.generate(8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn all_scenarios_generate_valid_instances() {
        for sc in Scenario::all() {
            let inst = sc.generate(100, 1);
            assert_eq!(inst.len(), 100, "{}", sc.name());
            for (_, j) in inst.iter() {
                assert!(j.length().is_positive());
                assert!(j.deadline() >= j.arrival());
            }
        }
    }

    #[test]
    fn rigid_scenario_has_zero_laxity() {
        let inst = Scenario::RigidLegacy.generate(50, 3);
        for (_, j) in inst.iter() {
            assert_eq!(j.laxity(), fjs_core::time::Dur::ZERO);
        }
    }

    #[test]
    fn mu_of_cloud_batch_is_bounded() {
        let inst = Scenario::CloudBatch.generate(500, 11);
        let mu = inst.mu().unwrap();
        assert!(mu <= 64.0 + 1e-9, "μ = {mu}");
        assert!(mu > 1.0);
    }

    #[test]
    fn scenario_names_unique() {
        let names: Vec<_> = Scenario::all().iter().map(|s| s.name()).collect();
        let mut d = names.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), names.len());
    }
}
