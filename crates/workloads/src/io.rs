//! Trace import/export: a minimal CSV format so users can run the
//! schedulers on their own job traces.
//!
//! Format: one job per line, `arrival,deadline,length` (header optional;
//! lines starting with `#` and blank lines are ignored). A fourth optional
//! column `size` is accepted and returned separately for DBP experiments.
//!
//! Two entry points share one parser:
//!
//! * [`parse_trace`] materializes a whole trace (the historical API);
//! * [`TraceReader`] streams records one line at a time from any
//!   [`BufRead`] with bounded memory — a multi-gigabyte trace never has to
//!   fit in RAM — and applies a [`Quarantine`] policy to malformed records
//!   (halt, skip, or skip-and-keep as dead letters), with counts surfaced
//!   through [`IngestStats`].
//!
//! `parse_trace` is implemented *on top of* `TraceReader` (halt policy),
//! so the two can never disagree about what a valid trace is, and the
//! line-numbered error messages are identical in both paths.

use fjs_core::job::{Instance, Job};
use std::fmt::Write as _;
use std::io::BufRead;

/// A parsed trace: the instance plus optional per-job sizes (present iff
/// every data line carried a fourth column).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The jobs.
    pub instance: Instance,
    /// Per-job sizes, if the trace had them.
    pub sizes: Option<Vec<f64>>,
}

/// Errors from trace parsing.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceError {
    /// A line had the wrong number of columns.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        cols: usize,
    },
    /// A field failed to parse as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// A job's parameters are invalid (deadline < arrival, length ≤ 0, or
    /// size outside `(0, 1]`).
    BadJob {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The underlying reader failed (streaming ingestion only).
    Io {
        /// 1-based line number at which the read failed.
        line: usize,
        /// The OS error, rendered.
        message: String,
    },
    /// Arrivals regressed in a reader configured to require arrival order
    /// (streaming ingestion only).
    OutOfOrder {
        /// 1-based line number.
        line: usize,
        /// The regressing arrival.
        arrival: f64,
        /// The previous (larger) arrival.
        prev: f64,
    },
}

impl TraceError {
    /// The 1-based line number the error points at.
    pub fn line(&self) -> usize {
        match *self {
            TraceError::BadArity { line, .. }
            | TraceError::BadNumber { line, .. }
            | TraceError::BadJob { line, .. }
            | TraceError::Io { line, .. }
            | TraceError::OutOfOrder { line, .. } => line,
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadArity { line, cols } => {
                write!(f, "line {line}: expected 3 or 4 columns, found {cols}")
            }
            TraceError::BadNumber { line, field } => {
                write!(f, "line {line}: '{field}' is not a finite number")
            }
            TraceError::BadJob { line, reason } => write!(f, "line {line}: {reason}"),
            TraceError::Io { line, message } => write!(f, "line {line}: read error: {message}"),
            TraceError::OutOfOrder { line, arrival, prev } => write!(
                f,
                "line {line}: arrival {arrival} regresses below {prev} (streaming requires arrival order)"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// What a [`TraceReader`] does with a malformed record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Quarantine {
    /// Stop at the first malformed record, yielding its error (the
    /// [`parse_trace`] behaviour).
    #[default]
    Halt,
    /// Skip malformed records, counting them in [`IngestStats::quarantined`].
    Skip,
    /// Skip malformed records but keep them as [`DeadLetter`]s (original
    /// line number, byte offset and raw text) for later inspection
    /// ([`TraceReader::dead_letters`]).
    DeadLetter,
}

impl Quarantine {
    /// All quarantine policies.
    pub const ALL: [Quarantine; 3] = [Quarantine::Halt, Quarantine::Skip, Quarantine::DeadLetter];

    /// Stable label (`halt`, `skip`, `dead-letter`).
    pub fn label(&self) -> &'static str {
        match self {
            Quarantine::Halt => "halt",
            Quarantine::Skip => "skip",
            Quarantine::DeadLetter => "dead-letter",
        }
    }
}

/// Ingestion counters maintained by a [`TraceReader`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IngestStats {
    /// Physical lines consumed from the reader.
    pub lines: usize,
    /// Well-formed data records yielded.
    pub records: usize,
    /// Malformed records quarantined (skipped or dead-lettered). Always 0
    /// under [`Quarantine::Halt`] — the first one ends the stream.
    pub quarantined: usize,
}

/// A quarantined record retained under [`Quarantine::DeadLetter`]: enough
/// provenance to attribute the reject back to its exact place in the
/// source — the 1-based line number *and* the byte offset of the line's
/// first byte — plus the raw text (line terminator stripped).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeadLetter {
    /// 1-based line number in the source stream.
    pub line: usize,
    /// Byte offset of the start of the line in the source stream.
    pub offset: u64,
    /// The rejected line, without its terminator.
    pub raw: String,
}

impl std::fmt::Display for DeadLetter {
    /// The stable attribution format: `line 2 (byte 6): mangled`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {} (byte {}): {}", self.line, self.offset, self.raw)
    }
}

/// One well-formed record from a streaming trace.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceRecord {
    /// 1-based line number the record came from.
    pub line: usize,
    /// The job.
    pub job: Job,
    /// The optional fourth (size) column.
    pub size: Option<f64>,
}

/// An incremental trace reader: yields [`TraceRecord`]s from any
/// [`BufRead`] in file order, holding only one line in memory at a time.
///
/// ```
/// use fjs_workloads::{Quarantine, TraceReader};
///
/// let text = "0,5,2\nmangled line\n1,9,3\n";
/// let mut reader = TraceReader::new(text.as_bytes()).with_policy(Quarantine::Skip);
/// let jobs: Vec<_> = reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap();
/// assert_eq!(jobs.len(), 2);
/// assert_eq!(reader.stats().quarantined, 1);
/// ```
pub struct TraceReader<R> {
    src: R,
    policy: Quarantine,
    require_order: bool,
    buf: String,
    line_no: usize,
    /// Byte offset of the first unconsumed byte (= offset of the next
    /// line's first byte).
    byte_offset: u64,
    seen_data: bool,
    last_arrival: Option<f64>,
    halted: bool,
    stats: IngestStats,
    dead: Vec<DeadLetter>,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered reader with the default ([`Quarantine::Halt`])
    /// policy and no arrival-order requirement.
    pub fn new(src: R) -> Self {
        TraceReader {
            src,
            policy: Quarantine::default(),
            require_order: false,
            buf: String::new(),
            line_no: 0,
            byte_offset: 0,
            seen_data: false,
            last_arrival: None,
            halted: false,
            stats: IngestStats::default(),
            dead: Vec::new(),
        }
    }

    /// Sets the quarantine policy.
    pub fn with_policy(mut self, policy: Quarantine) -> Self {
        self.policy = policy;
        self
    }

    /// Requires non-decreasing arrivals, yielding [`TraceError::OutOfOrder`]
    /// otherwise. Online consumers (e.g. `fjs soak --trace`) want this —
    /// the simulation releases jobs in arrival order; an unordered trace
    /// would silently reorder a "stream".
    pub fn require_arrival_order(mut self, on: bool) -> Self {
        self.require_order = on;
        self
    }

    /// Ingestion counters so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Quarantined records with full provenance (non-empty only under
    /// [`Quarantine::DeadLetter`]).
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead
    }

    /// Classifies the line currently in `self.buf`. `Ok(None)` means the
    /// line carries no record (blank, comment, or the header).
    fn classify(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let line_no = self.line_no;
        let line = self.buf.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Skip a header line: the first content line, no field numeric.
        if !self.seen_data && fields.iter().all(|f| f.parse::<f64>().is_err()) {
            self.seen_data = true;
            return Ok(None);
        }
        self.seen_data = true;
        if fields.len() != 3 && fields.len() != 4 {
            return Err(TraceError::BadArity {
                line: line_no,
                cols: fields.len(),
            });
        }
        let mut nums = Vec::with_capacity(4);
        for f in &fields {
            let v: f64 = f.parse().map_err(|_| TraceError::BadNumber {
                line: line_no,
                field: f.to_string(),
            })?;
            if !v.is_finite() {
                return Err(TraceError::BadNumber {
                    line: line_no,
                    field: f.to_string(),
                });
            }
            nums.push(v);
        }
        let (a, d, p) = (nums[0], nums[1], nums[2]);
        // The fallible job constructor owns the semantic checks (deadline
        // ordering, positive finite length), so the CLI and the library
        // agree on what a valid job is.
        let job = Job::try_adp(a, d, p).map_err(|e| TraceError::BadJob {
            line: line_no,
            reason: e.to_string(),
        })?;
        let size = match nums.get(3) {
            Some(&s) => {
                if !(s > 0.0 && s <= 1.0) {
                    return Err(TraceError::BadJob {
                        line: line_no,
                        reason: format!("size {s} outside (0, 1]"),
                    });
                }
                Some(s)
            }
            None => None,
        };
        if self.require_order {
            if let Some(prev) = self.last_arrival {
                if a < prev {
                    return Err(TraceError::OutOfOrder {
                        line: line_no,
                        arrival: a,
                        prev,
                    });
                }
            }
            self.last_arrival = Some(a);
        }
        Ok(Some(TraceRecord {
            line: line_no,
            job,
            size,
        }))
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.halted {
                return None;
            }
            self.buf.clear();
            let line_offset = self.byte_offset;
            match self.src.read_line(&mut self.buf) {
                // A broken reader can't be skipped past: always halt.
                Err(e) => {
                    self.halted = true;
                    return Some(Err(TraceError::Io {
                        line: self.line_no + 1,
                        message: e.to_string(),
                    }));
                }
                Ok(0) => return None,
                Ok(n) => self.byte_offset += n as u64,
            }
            self.line_no += 1;
            self.stats.lines += 1;
            match self.classify() {
                Ok(None) => continue,
                Ok(Some(record)) => {
                    self.stats.records += 1;
                    return Some(Ok(record));
                }
                Err(err) => match self.policy {
                    Quarantine::Halt => {
                        self.halted = true;
                        return Some(Err(err));
                    }
                    Quarantine::Skip => {
                        self.stats.quarantined += 1;
                        continue;
                    }
                    Quarantine::DeadLetter => {
                        self.stats.quarantined += 1;
                        let raw = self.buf.trim_end_matches(['\n', '\r']).to_string();
                        self.dead.push(DeadLetter {
                            line: self.line_no,
                            offset: line_offset,
                            raw,
                        });
                        continue;
                    }
                },
            }
        }
    }
}

/// Parses a trace from CSV text.
///
/// `str::lines`-style tolerance is preserved: CRLF traces parse identically
/// to LF ones, blank lines and `#` comments are skipped, and an initial
/// non-numeric header line is ignored. Implemented by streaming through
/// [`TraceReader`] with the [`Quarantine::Halt`] policy, so error messages
/// are byte-for-byte those of the streaming path.
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut jobs = Vec::new();
    let mut sizes: Vec<f64> = Vec::new();
    let mut any_without_size = false;
    for item in TraceReader::new(text.as_bytes()) {
        let record = item?;
        jobs.push(record.job);
        match record.size {
            Some(s) => sizes.push(s),
            None => any_without_size = true,
        }
    }
    let sizes = if any_without_size || sizes.is_empty() {
        None
    } else {
        Some(sizes)
    };
    Ok(Trace {
        instance: Instance::new(jobs),
        sizes,
    })
}

/// Serializes an instance (optionally with sizes) to the CSV trace format.
pub fn write_trace(inst: &Instance, sizes: Option<&[f64]>) -> String {
    if let Some(sz) = sizes {
        assert_eq!(sz.len(), inst.len(), "one size per job");
    }
    let mut out = String::from("# arrival,deadline,length");
    if sizes.is_some() {
        out.push_str(",size");
    }
    out.push('\n');
    for (id, job) in inst.iter() {
        let _ = write!(out, "{},{},{}", job.arrival(), job.deadline(), job.length());
        if let Some(sz) = sizes {
            let _ = write!(out, ",{}", sz[id.index()]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::time::{dur, t};

    #[test]
    fn parses_basic_trace() {
        let trace = parse_trace("0,5,2\n1.5,9,3\n").unwrap();
        assert_eq!(trace.instance.len(), 2);
        assert_eq!(trace.instance.jobs()[1].arrival(), t(1.5));
        assert_eq!(trace.instance.jobs()[1].length(), dur(3.0));
        assert!(trace.sizes.is_none());
    }

    #[test]
    fn parses_crlf_traces() {
        let trace =
            parse_trace("arrival,deadline,length\r\n0,5,2\r\n\r\n# c\r\n1.5,9,3\r\n").unwrap();
        assert_eq!(trace.instance.len(), 2);
        assert_eq!(trace.instance.jobs()[1].arrival(), t(1.5));
    }

    #[test]
    fn header_after_comments_is_still_skipped() {
        let trace = parse_trace("# exported trace\n\narrival,deadline,length\n0,5,2\n").unwrap();
        assert_eq!(trace.instance.len(), 1);
    }

    #[test]
    fn header_not_skipped_after_data() {
        // A non-numeric line after real data is an error, not a header.
        assert!(matches!(
            parse_trace("0,5,2\na,b,c\n"),
            Err(TraceError::BadNumber { line: 2, .. })
        ));
    }

    #[test]
    fn errors_carry_job_constructor_reasons() {
        let err = parse_trace("5,1,2\n").unwrap_err();
        assert!(err.to_string().contains("precedes arrival"), "{err}");
        let err = parse_trace("0,5,-1\n").unwrap_err();
        assert!(err.to_string().contains("must be positive"), "{err}");
    }

    #[test]
    fn parses_sizes_comments_and_header() {
        let text = "arrival,deadline,length,size\n# a comment\n0,5,2,0.5\n\n1,9,3,0.25\n";
        let trace = parse_trace(text).unwrap();
        assert_eq!(trace.instance.len(), 2);
        assert_eq!(trace.sizes, Some(vec![0.5, 0.25]));
    }

    #[test]
    fn mixed_size_columns_drop_sizes() {
        let trace = parse_trace("0,5,2,0.5\n1,9,3\n").unwrap();
        assert!(trace.sizes.is_none(), "sizes only returned when complete");
        assert_eq!(trace.instance.len(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            parse_trace("0,5\n"),
            Err(TraceError::BadArity { line: 1, cols: 2 })
        ));
        assert!(matches!(
            parse_trace("0,5,abc\n"),
            Err(TraceError::BadNumber { line: 1, .. })
        ));
        assert!(matches!(
            parse_trace("5,1,2\n"),
            Err(TraceError::BadJob { line: 1, .. })
        ));
        assert!(matches!(
            parse_trace("0,5,0\n"),
            Err(TraceError::BadJob { .. })
        ));
        assert!(matches!(
            parse_trace("0,5,1,2.0\n"),
            Err(TraceError::BadJob { .. })
        ));
        assert!(matches!(
            parse_trace("0,5,inf\n"),
            Err(TraceError::BadNumber { .. })
        ));
    }

    #[test]
    fn roundtrip_without_sizes() {
        let inst = Instance::new(vec![
            fjs_core::job::Job::adp(0.0, 5.0, 2.0),
            fjs_core::job::Job::adp(1.25, 9.5, 3.75),
        ]);
        let text = write_trace(&inst, None);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.instance, inst);
        assert!(back.sizes.is_none());
    }

    #[test]
    fn roundtrip_with_sizes() {
        let inst = Instance::new(vec![fjs_core::job::Job::adp(0.0, 1.0, 1.0)]);
        let sizes = vec![0.125];
        let text = write_trace(&inst, Some(&sizes));
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.instance, inst);
        assert_eq!(back.sizes, Some(sizes));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = parse_trace("0,5\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    /// The satellite guard: the streaming rewrite must keep `parse_trace`'s
    /// line-numbered error messages byte-for-byte identical to the
    /// historical materializing parser.
    #[test]
    fn error_messages_match_golden_strings() {
        let goldens = [
            ("0,5\n", "line 1: expected 3 or 4 columns, found 2"),
            ("0,5,2,0.5,9\n", "line 1: expected 3 or 4 columns, found 5"),
            (
                "0,5,2\n\n# c\n1,abc,3\n",
                "line 4: 'abc' is not a finite number",
            ),
            ("0,5,inf\n", "line 1: 'inf' is not a finite number"),
            ("0,5,2\n0,5,2,2.0\n", "line 2: size 2 outside (0, 1]"),
        ];
        for (text, expected) in goldens {
            assert_eq!(parse_trace(text).unwrap_err().to_string(), expected);
        }
        // Constructor-owned messages keep their shape (exact wording owned
        // by fjs-core, so assert the line prefix and the moving parts).
        let err = parse_trace("0,5,2\n7,3,2\n").unwrap_err().to_string();
        assert!(err.starts_with("line 2: "), "{err}");
        assert!(err.contains('7') && err.contains('3'), "{err}");
    }

    #[test]
    fn reader_skip_policy_recovers_valid_records() {
        let text = "# hdr\n0,5,2\ngarbage,x\n1,9,3\n0,5\n2,9,1\n";
        let mut reader = TraceReader::new(text.as_bytes()).with_policy(Quarantine::Skip);
        let records: Vec<TraceRecord> = reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1].line, 4);
        let stats = reader.stats();
        assert_eq!(stats.lines, 6);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.quarantined, 2);
        assert!(
            reader.dead_letters().is_empty(),
            "skip keeps no dead letters"
        );
    }

    #[test]
    fn reader_dead_letter_policy_keeps_raw_lines() {
        let text = "0,5,2\nmangled\n1,9,3\n";
        let mut reader = TraceReader::new(text.as_bytes()).with_policy(Quarantine::DeadLetter);
        let n = reader.by_ref().filter(Result::is_ok).count();
        assert_eq!(n, 2);
        assert_eq!(
            reader.dead_letters(),
            &[DeadLetter {
                line: 2,
                offset: 6,
                raw: "mangled".to_string(),
            }]
        );
        assert_eq!(reader.stats().quarantined, 1);
    }

    /// The satellite guard: dead letters carry the original line number
    /// AND the byte offset of the line's first byte, and render in the
    /// stable attribution format `fjs serve` replies quote.
    #[test]
    fn dead_letters_carry_offsets_and_golden_format() {
        // CRLF first line (7 bytes), then a comment (4), then the two
        // rejects at known offsets.
        let text = "0,5,2\r\n# c\nbad one\n1,9,3\n0,5\n";
        let mut reader = TraceReader::new(text.as_bytes()).with_policy(Quarantine::DeadLetter);
        let n = reader.by_ref().filter(Result::is_ok).count();
        assert_eq!(n, 2);
        let dead = reader.dead_letters();
        assert_eq!(dead.len(), 2);
        assert_eq!((dead[0].line, dead[0].offset), (3, 11));
        assert_eq!((dead[1].line, dead[1].offset), (5, 25));
        // Offsets point at the exact source bytes.
        assert_eq!(&text.as_bytes()[11..11 + dead[0].raw.len()], b"bad one");
        assert_eq!(&text.as_bytes()[25..25 + dead[1].raw.len()], b"0,5");
        let golden = ["line 3 (byte 11): bad one", "line 5 (byte 25): 0,5"];
        for (d, want) in dead.iter().zip(golden) {
            assert_eq!(d.to_string(), want);
        }
    }

    #[test]
    fn reader_halt_policy_stops_at_first_error() {
        let text = "0,5,2\n0,5\n1,9,3\n";
        let mut reader = TraceReader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(matches!(
            reader.next(),
            Some(Err(TraceError::BadArity { line: 2, cols: 2 }))
        ));
        assert!(reader.next().is_none(), "halt ends the stream");
        assert_eq!(reader.stats().quarantined, 0);
    }

    #[test]
    fn reader_enforces_arrival_order_when_asked() {
        let text = "5,9,1\n3,9,1\n";
        // Off by default (parse_trace accepts any order).
        assert!(parse_trace(text).is_ok());
        let mut reader = TraceReader::new(text.as_bytes()).require_arrival_order(true);
        assert!(reader.next().unwrap().is_ok());
        match reader.next() {
            Some(Err(TraceError::OutOfOrder {
                line: 2,
                arrival,
                prev,
            })) => {
                assert_eq!((arrival, prev), (3.0, 5.0));
            }
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
    }

    #[test]
    fn reader_io_error_always_halts() {
        struct FailAfter {
            fed: &'static [u8],
            pos: usize,
        }
        impl std::io::Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.fed.len() {
                    let n = buf.len().min(self.fed.len() - self.pos);
                    buf[..n].copy_from_slice(&self.fed[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    Err(std::io::Error::other("disk on fire"))
                }
            }
        }
        let src = std::io::BufReader::new(FailAfter {
            fed: b"0,5,2\n",
            pos: 0,
        });
        let mut reader = TraceReader::new(src).with_policy(Quarantine::Skip);
        assert!(reader.next().unwrap().is_ok());
        match reader.next() {
            Some(Err(TraceError::Io { line: 2, message })) => {
                assert!(message.contains("disk on fire"), "{message}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(reader.next().is_none(), "io errors halt even under Skip");
    }

    #[test]
    fn parse_trace_and_reader_agree_on_roundtrip() {
        let inst = Instance::new(vec![
            fjs_core::job::Job::adp(0.0, 5.0, 2.0),
            fjs_core::job::Job::adp(1.0, 4.0, 1.5),
            fjs_core::job::Job::adp(2.5, 8.0, 3.0),
        ]);
        let text = write_trace(&inst, None);
        let streamed: Vec<Job> = TraceReader::new(text.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .map(|r| r.job)
            .collect();
        assert_eq!(
            Instance::new(streamed),
            parse_trace(&text).unwrap().instance
        );
    }
}
