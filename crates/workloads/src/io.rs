//! Trace import/export: a minimal CSV format so users can run the
//! schedulers on their own job traces.
//!
//! Format: one job per line, `arrival,deadline,length` (header optional;
//! lines starting with `#` and blank lines are ignored). A fourth optional
//! column `size` is accepted and returned separately for DBP experiments.

use fjs_core::job::{Instance, Job};
use std::fmt::Write as _;

/// A parsed trace: the instance plus optional per-job sizes (present iff
/// every data line carried a fourth column).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The jobs.
    pub instance: Instance,
    /// Per-job sizes, if the trace had them.
    pub sizes: Option<Vec<f64>>,
}

/// Errors from trace parsing.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceError {
    /// A line had the wrong number of columns.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        cols: usize,
    },
    /// A field failed to parse as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// A job's parameters are invalid (deadline < arrival, length ≤ 0, or
    /// size outside `(0, 1]`).
    BadJob {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadArity { line, cols } => {
                write!(f, "line {line}: expected 3 or 4 columns, found {cols}")
            }
            TraceError::BadNumber { line, field } => {
                write!(f, "line {line}: '{field}' is not a finite number")
            }
            TraceError::BadJob { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace from CSV text.
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut jobs = Vec::new();
    let mut sizes: Vec<f64> = Vec::new();
    let mut any_without_size = false;
    let mut seen_data = false;

    // `str::lines` splits on both `\n` and `\r\n`, and `trim` removes any
    // stray `\r`, so CRLF traces parse identically to LF ones.
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Skip a header line: the first content line, no field numeric.
        if !seen_data && fields.iter().all(|f| f.parse::<f64>().is_err()) {
            seen_data = true;
            continue;
        }
        seen_data = true;
        if fields.len() != 3 && fields.len() != 4 {
            return Err(TraceError::BadArity { line: line_no, cols: fields.len() });
        }
        let mut nums = Vec::with_capacity(4);
        for f in &fields {
            let v: f64 = f.parse().map_err(|_| TraceError::BadNumber {
                line: line_no,
                field: f.to_string(),
            })?;
            if !v.is_finite() {
                return Err(TraceError::BadNumber { line: line_no, field: f.to_string() });
            }
            nums.push(v);
        }
        let (a, d, p) = (nums[0], nums[1], nums[2]);
        // The fallible job constructor owns the semantic checks (deadline
        // ordering, positive finite length), so the CLI and the library
        // agree on what a valid job is.
        let job = Job::try_adp(a, d, p)
            .map_err(|e| TraceError::BadJob { line: line_no, reason: e.to_string() })?;
        jobs.push(job);
        if let Some(&s) = nums.get(3) {
            if !(s > 0.0 && s <= 1.0) {
                return Err(TraceError::BadJob {
                    line: line_no,
                    reason: format!("size {s} outside (0, 1]"),
                });
            }
            sizes.push(s);
        } else {
            any_without_size = true;
        }
    }

    let sizes = if any_without_size || sizes.is_empty() { None } else { Some(sizes) };
    Ok(Trace { instance: Instance::new(jobs), sizes })
}

/// Serializes an instance (optionally with sizes) to the CSV trace format.
pub fn write_trace(inst: &Instance, sizes: Option<&[f64]>) -> String {
    if let Some(sz) = sizes {
        assert_eq!(sz.len(), inst.len(), "one size per job");
    }
    let mut out = String::from("# arrival,deadline,length");
    if sizes.is_some() {
        out.push_str(",size");
    }
    out.push('\n');
    for (id, job) in inst.iter() {
        let _ = write!(out, "{},{},{}", job.arrival(), job.deadline(), job.length());
        if let Some(sz) = sizes {
            let _ = write!(out, ",{}", sz[id.index()]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::time::{dur, t};

    #[test]
    fn parses_basic_trace() {
        let trace = parse_trace("0,5,2\n1.5,9,3\n").unwrap();
        assert_eq!(trace.instance.len(), 2);
        assert_eq!(trace.instance.jobs()[1].arrival(), t(1.5));
        assert_eq!(trace.instance.jobs()[1].length(), dur(3.0));
        assert!(trace.sizes.is_none());
    }

    #[test]
    fn parses_crlf_traces() {
        let trace = parse_trace("arrival,deadline,length\r\n0,5,2\r\n\r\n# c\r\n1.5,9,3\r\n").unwrap();
        assert_eq!(trace.instance.len(), 2);
        assert_eq!(trace.instance.jobs()[1].arrival(), t(1.5));
    }

    #[test]
    fn header_after_comments_is_still_skipped() {
        let trace = parse_trace("# exported trace\n\narrival,deadline,length\n0,5,2\n").unwrap();
        assert_eq!(trace.instance.len(), 1);
    }

    #[test]
    fn header_not_skipped_after_data() {
        // A non-numeric line after real data is an error, not a header.
        assert!(matches!(parse_trace("0,5,2\na,b,c\n"), Err(TraceError::BadNumber { line: 2, .. })));
    }

    #[test]
    fn errors_carry_job_constructor_reasons() {
        let err = parse_trace("5,1,2\n").unwrap_err();
        assert!(err.to_string().contains("precedes arrival"), "{err}");
        let err = parse_trace("0,5,-1\n").unwrap_err();
        assert!(err.to_string().contains("must be positive"), "{err}");
    }

    #[test]
    fn parses_sizes_comments_and_header() {
        let text = "arrival,deadline,length,size\n# a comment\n0,5,2,0.5\n\n1,9,3,0.25\n";
        let trace = parse_trace(text).unwrap();
        assert_eq!(trace.instance.len(), 2);
        assert_eq!(trace.sizes, Some(vec![0.5, 0.25]));
    }

    #[test]
    fn mixed_size_columns_drop_sizes() {
        let trace = parse_trace("0,5,2,0.5\n1,9,3\n").unwrap();
        assert!(trace.sizes.is_none(), "sizes only returned when complete");
        assert_eq!(trace.instance.len(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(parse_trace("0,5\n"), Err(TraceError::BadArity { line: 1, cols: 2 })));
        assert!(matches!(
            parse_trace("0,5,abc\n"),
            Err(TraceError::BadNumber { line: 1, .. })
        ));
        assert!(matches!(parse_trace("5,1,2\n"), Err(TraceError::BadJob { line: 1, .. })));
        assert!(matches!(parse_trace("0,5,0\n"), Err(TraceError::BadJob { .. })));
        assert!(matches!(parse_trace("0,5,1,2.0\n"), Err(TraceError::BadJob { .. })));
        assert!(matches!(parse_trace("0,5,inf\n"), Err(TraceError::BadNumber { .. })));
    }

    #[test]
    fn roundtrip_without_sizes() {
        let inst = Instance::new(vec![
            fjs_core::job::Job::adp(0.0, 5.0, 2.0),
            fjs_core::job::Job::adp(1.25, 9.5, 3.75),
        ]);
        let text = write_trace(&inst, None);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.instance, inst);
        assert!(back.sizes.is_none());
    }

    #[test]
    fn roundtrip_with_sizes() {
        let inst = Instance::new(vec![fjs_core::job::Job::adp(0.0, 1.0, 1.0)]);
        let sizes = vec![0.125];
        let text = write_trace(&inst, Some(&sizes));
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.instance, inst);
        assert_eq!(back.sizes, Some(sizes));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = parse_trace("0,5\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
