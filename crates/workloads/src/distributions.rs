//! Primitive distributions used by the workload generator: arrival
//! processes, processing-length laws and laxity models.
//!
//! Everything is seeded and deterministic: the same `(spec, seed)` always
//! yields the same instance, which keeps experiments reproducible and lets
//! parallel sweeps shard by seed.

use fjs_prng::SmallRng;

/// How job arrival times are produced.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ArrivalProcess {
    /// Poisson process with the given rate (mean inter-arrival `1/rate`).
    Poisson {
        /// Arrivals per unit time (`> 0`).
        rate: f64,
    },
    /// Evenly spaced arrivals with the given gap.
    Uniform {
        /// Gap between consecutive arrivals (`>= 0`).
        gap: f64,
    },
    /// Bursts of `burst_size` simultaneous arrivals separated by
    /// exponential gaps of mean `1/rate`.
    Bursty {
        /// Jobs per burst (`>= 1`).
        burst_size: usize,
        /// Bursts per unit time (`> 0`).
        rate: f64,
    },
    /// Non-homogeneous Poisson with sinusoidal intensity
    /// `rate(t) = base_rate · (1 + amplitude · sin(2πt/period))` — the
    /// classic diurnal cloud-submission pattern. Sampled by thinning.
    Diurnal {
        /// Mean arrival rate (`> 0`).
        base_rate: f64,
        /// Relative swing (`0..=1`; 1 means the trough reaches zero).
        amplitude: f64,
        /// Cycle length (`> 0`).
        period: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` nondecreasing arrival times starting at 0.
    pub fn sample(&self, n: usize, rng: &mut SmallRng) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                for _ in 0..n {
                    // Inverse-CDF exponential; guard the log away from 0.
                    let u: f64 = rng.f64_range(f64::EPSILON, 1.0);
                    t += -u.ln() / rate;
                    out.push(t);
                }
            }
            ArrivalProcess::Uniform { gap } => {
                assert!(gap >= 0.0, "gap must be nonnegative");
                for i in 0..n {
                    out.push(i as f64 * gap);
                }
            }
            ArrivalProcess::Bursty { burst_size, rate } => {
                assert!(burst_size >= 1, "bursts need at least one job");
                assert!(rate > 0.0, "burst rate must be positive");
                let mut t = 0.0;
                while out.len() < n {
                    let u: f64 = rng.f64_range(f64::EPSILON, 1.0);
                    t += -u.ln() / rate;
                    for _ in 0..burst_size.min(n - out.len()) {
                        out.push(t);
                    }
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period,
            } => {
                assert!(base_rate > 0.0, "base rate must be positive");
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "amplitude must be in [0, 1]"
                );
                assert!(period > 0.0, "period must be positive");
                // Thinning against the envelope rate base·(1+amplitude).
                let envelope = base_rate * (1.0 + amplitude);
                let mut t = 0.0;
                while out.len() < n {
                    let u: f64 = rng.f64_range(f64::EPSILON, 1.0);
                    t += -u.ln() / envelope;
                    let rate =
                        base_rate * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
                    if rng.f64_range(0.0, 1.0) * envelope <= rate {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

/// How processing lengths are produced.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LengthLaw {
    /// All jobs share one length.
    Fixed {
        /// The common length (`> 0`).
        value: f64,
    },
    /// Uniform on `[min, max]`.
    Uniform {
        /// Smallest length (`> 0`).
        min: f64,
        /// Largest length (`>= min`).
        max: f64,
    },
    /// Bounded Pareto on `[min, max]` with tail index `shape` — the classic
    /// heavy-tailed job-size model for cloud/batch workloads.
    BoundedPareto {
        /// Smallest length (`> 0`).
        min: f64,
        /// Largest length (`> min`).
        max: f64,
        /// Tail index (`> 0`); smaller = heavier tail.
        shape: f64,
    },
    /// Two-point mixture: `short` with probability `1 − p_long`, else
    /// `long` — matches the paper's short/long adversarial flavor.
    Bimodal {
        /// Short length (`> 0`).
        short: f64,
        /// Long length (`>= short`).
        long: f64,
        /// Probability of a long job (`0..=1`).
        p_long: f64,
    },
}

impl LengthLaw {
    /// Draws one length.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        match *self {
            LengthLaw::Fixed { value } => {
                assert!(value > 0.0, "length must be positive");
                value
            }
            LengthLaw::Uniform { min, max } => {
                assert!(min > 0.0 && max >= min, "need 0 < min <= max");
                if min == max {
                    min
                } else {
                    rng.f64_range_inclusive(min, max)
                }
            }
            LengthLaw::BoundedPareto { min, max, shape } => {
                assert!(
                    min > 0.0 && max > min && shape > 0.0,
                    "invalid bounded Pareto"
                );
                // Inverse CDF of the bounded Pareto.
                let u: f64 = rng.f64_range(0.0, 1.0);
                let lo_a = min.powf(-shape);
                let hi_a = max.powf(-shape);
                (lo_a - u * (lo_a - hi_a)).powf(-1.0 / shape)
            }
            LengthLaw::Bimodal {
                short,
                long,
                p_long,
            } => {
                assert!(short > 0.0 && long >= short, "need 0 < short <= long");
                assert!(
                    (0.0..=1.0).contains(&p_long),
                    "p_long must be a probability"
                );
                if rng.bool_with(p_long) {
                    long
                } else {
                    short
                }
            }
        }
    }

    /// The max/min length ratio `μ` this law can produce.
    pub fn mu_bound(&self) -> f64 {
        match *self {
            LengthLaw::Fixed { .. } => 1.0,
            LengthLaw::Uniform { min, max } => max / min,
            LengthLaw::BoundedPareto { min, max, .. } => max / min,
            LengthLaw::Bimodal { short, long, .. } => long / short,
        }
    }
}

/// How laxities (deadline minus arrival) are produced.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LaxityModel {
    /// All jobs are rigid (`d = a`), the model of prior busy-time work.
    Rigid,
    /// Constant laxity.
    Constant {
        /// The common laxity (`>= 0`).
        value: f64,
    },
    /// Laxity proportional to the job's own length: `factor · p`.
    Proportional {
        /// Multiplier (`>= 0`).
        factor: f64,
    },
    /// Uniform on `[min, max]`.
    Uniform {
        /// Smallest laxity (`>= 0`).
        min: f64,
        /// Largest laxity (`>= min`).
        max: f64,
    },
}

impl LaxityModel {
    /// Draws one laxity for a job of length `p`.
    pub fn sample(&self, p: f64, rng: &mut SmallRng) -> f64 {
        match *self {
            LaxityModel::Rigid => 0.0,
            LaxityModel::Constant { value } => {
                assert!(value >= 0.0, "laxity must be nonnegative");
                value
            }
            LaxityModel::Proportional { factor } => {
                assert!(factor >= 0.0, "laxity factor must be nonnegative");
                factor * p
            }
            LaxityModel::Uniform { min, max } => {
                assert!(min >= 0.0 && max >= min, "need 0 <= min <= max");
                if min == max {
                    min
                } else {
                    rng.f64_range_inclusive(min, max)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_prng::SmallRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn poisson_arrivals_increase() {
        let a = ArrivalProcess::Poisson { rate: 2.0 }.sample(100, &mut rng());
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a[0] > 0.0);
        // Mean inter-arrival ≈ 0.5 → a[99] ≈ 50 within loose bounds.
        assert!(a[99] > 20.0 && a[99] < 110.0, "total time {}", a[99]);
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let a = ArrivalProcess::Uniform { gap: 3.0 }.sample(4, &mut rng());
        assert_eq!(a, vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn bursty_arrivals_cluster() {
        let a = ArrivalProcess::Bursty {
            burst_size: 5,
            rate: 1.0,
        }
        .sample(12, &mut rng());
        assert_eq!(a.len(), 12);
        // First five identical, next five identical.
        assert!(a[0..5].iter().all(|&t| t == a[0]));
        assert!(a[5..10].iter().all(|&t| t == a[5]));
        assert!(a[5] > a[0]);
    }

    #[test]
    fn diurnal_arrivals_cluster_in_peaks() {
        let proc = ArrivalProcess::Diurnal {
            base_rate: 2.0,
            amplitude: 1.0,
            period: 20.0,
        };
        let a = proc.sample(2000, &mut rng());
        assert_eq!(a.len(), 2000);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Count arrivals in peak phases (sin > 0) vs trough phases: peaks
        // must dominate clearly with amplitude 1.
        let (mut peak, mut trough) = (0usize, 0usize);
        for &t in &a {
            let phase = (std::f64::consts::TAU * t / 20.0).sin();
            if phase > 0.0 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > 2 * trough,
            "expected strong diurnal skew, got peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let law = LengthLaw::BoundedPareto {
            min: 1.0,
            max: 100.0,
            shape: 1.1,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let p = law.sample(&mut r);
            assert!((1.0..=100.0).contains(&p), "out of range: {p}");
        }
        assert_eq!(law.mu_bound(), 100.0);
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // Most mass near min for shape > 1.
        let law = LengthLaw::BoundedPareto {
            min: 1.0,
            max: 1000.0,
            shape: 1.5,
        };
        let mut r = rng();
        let below_10 = (0..2000).filter(|_| law.sample(&mut r) < 10.0).count();
        assert!(
            below_10 > 1800,
            "expected >90% below 10, got {below_10}/2000"
        );
    }

    #[test]
    fn bimodal_mixture_frequencies() {
        let law = LengthLaw::Bimodal {
            short: 1.0,
            long: 8.0,
            p_long: 0.25,
        };
        let mut r = rng();
        let longs = (0..4000).filter(|_| law.sample(&mut r) == 8.0).count();
        assert!(
            (800..1200).contains(&longs),
            "expected ≈1000 longs, got {longs}"
        );
        assert_eq!(law.mu_bound(), 8.0);
    }

    #[test]
    fn uniform_length_range() {
        let law = LengthLaw::Uniform { min: 2.0, max: 5.0 };
        let mut r = rng();
        for _ in 0..200 {
            let p = law.sample(&mut r);
            assert!((2.0..=5.0).contains(&p));
        }
        // Degenerate range works.
        assert_eq!(
            LengthLaw::Uniform { min: 3.0, max: 3.0 }.sample(&mut r),
            3.0
        );
    }

    #[test]
    fn laxity_models() {
        let mut r = rng();
        assert_eq!(LaxityModel::Rigid.sample(5.0, &mut r), 0.0);
        assert_eq!(
            LaxityModel::Constant { value: 2.0 }.sample(5.0, &mut r),
            2.0
        );
        assert_eq!(
            LaxityModel::Proportional { factor: 0.5 }.sample(6.0, &mut r),
            3.0
        );
        let l = LaxityModel::Uniform { min: 1.0, max: 4.0 }.sample(5.0, &mut r);
        assert!((1.0..=4.0).contains(&l));
    }
}
