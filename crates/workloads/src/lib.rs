//! # fjs-workloads
//!
//! Seeded synthetic workload generation for flexible-job-scheduling
//! experiments: arrival processes (Poisson, uniform, bursty), length laws
//! (fixed, uniform, bounded Pareto, bimodal), laxity models (rigid,
//! constant, proportional, uniform) and the named [`Scenario`] presets used
//! by experiments E5/E7/E8/E9.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod generator;
pub mod io;
pub mod stats;

pub use distributions::{ArrivalProcess, LaxityModel, LengthLaw};
pub use io::{parse_trace, write_trace, Trace, TraceError};
pub use stats::{workload_stats, WorkloadStats};
pub use generator::{Scenario, WorkloadSpec};
