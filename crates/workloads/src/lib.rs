//! # fjs-workloads
//!
//! Seeded synthetic workload generation for flexible-job-scheduling
//! experiments: arrival processes (Poisson, uniform, bursty), length laws
//! (fixed, uniform, bounded Pareto, bimodal), laxity models (rigid,
//! constant, proportional, uniform) and the named [`Scenario`] presets used
//! by experiments E5/E7/E8/E9, plus the integer conformance families
//! ([`families`]) that the `fjs-testkit` oracles draw cases from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod families;
pub mod generator;
pub mod io;
pub mod io_faults;
pub mod stats;

pub use distributions::{ArrivalProcess, LaxityModel, LengthLaw};
pub use families::{
    conformance_deck, uniform_conformance_deck, Family, IntFamily, LoadRegime, SlackRegime,
    UniformFamily,
};
pub use generator::{Scenario, WorkloadSpec};
pub use io::{
    parse_trace, write_trace, DeadLetter, IngestStats, Quarantine, Trace, TraceError, TraceReader,
    TraceRecord,
};
pub use io_faults::{run_io_chaos, IoChaosCell, IoFaultMode};
pub use stats::{workload_stats, WorkloadStats};
