//! Workload statistics: the shape parameters that determine which of the
//! paper's regimes an instance lives in (`μ`, laxity richness, load).

use fjs_core::job::Instance;

/// Summary of an instance's scheduling-relevant shape.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub n: usize,
    /// Max/min processing-length ratio `μ` (1 for uniform lengths).
    pub mu: f64,
    /// Mean processing length.
    pub mean_length: f64,
    /// Mean laxity `d − a`.
    pub mean_laxity: f64,
    /// Mean laxity/length ratio (how much room jobs have relative to their
    /// own cost; 0 for rigid workloads).
    pub mean_laxity_ratio: f64,
    /// Fraction of rigid jobs (`d == a`).
    pub rigid_fraction: f64,
    /// Offered load: total work divided by the arrival horizon (∞-guarded:
    /// 0 when all jobs arrive at one instant).
    pub load: f64,
}

/// Computes [`WorkloadStats`] for a non-empty instance.
///
/// # Panics
/// Panics on an empty instance.
pub fn workload_stats(inst: &Instance) -> WorkloadStats {
    assert!(!inst.is_empty(), "stats need at least one job");
    let n = inst.len();
    let mu = inst.mu().expect("non-empty");
    let total_work = inst.total_work().get();
    let mean_length = total_work / n as f64;
    let mean_laxity = inst.jobs().iter().map(|j| j.laxity().get()).sum::<f64>() / n as f64;
    let mean_laxity_ratio = inst
        .jobs()
        .iter()
        .map(|j| j.laxity().get() / j.length().get())
        .sum::<f64>()
        / n as f64;
    let rigid_fraction = inst
        .jobs()
        .iter()
        .filter(|j| !j.laxity().is_positive())
        .count() as f64
        / n as f64;
    let first = inst.first_arrival().expect("non-empty").get();
    let last = inst
        .jobs()
        .iter()
        .map(|j| j.arrival().get())
        .fold(f64::NEG_INFINITY, f64::max);
    let window = last - first;
    let load = if window > 0.0 {
        total_work / window
    } else {
        0.0
    };
    WorkloadStats {
        n,
        mu,
        mean_length,
        mean_laxity,
        mean_laxity_ratio,
        rigid_fraction,
        load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use fjs_core::job::Job;

    #[test]
    fn stats_on_a_known_instance() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 2.0), // rigid
            Job::adp(1.0, 5.0, 1.0), // laxity 4, ratio 4
            Job::adp(4.0, 6.0, 4.0), // laxity 2, ratio 0.5
        ]);
        let s = workload_stats(&inst);
        assert_eq!(s.n, 3);
        assert_eq!(s.mu, 4.0);
        assert!((s.mean_length - 7.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_laxity - 2.0).abs() < 1e-12);
        assert!((s.mean_laxity_ratio - 1.5).abs() < 1e-12);
        assert!((s.rigid_fraction - 1.0 / 3.0).abs() < 1e-12);
        // total work 7 over arrival window 4.
        assert!((s.load - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn rigid_scenario_is_all_rigid() {
        let inst = Scenario::RigidLegacy.generate(80, 5);
        let s = workload_stats(&inst);
        assert_eq!(s.rigid_fraction, 1.0);
        assert_eq!(s.mean_laxity, 0.0);
    }

    #[test]
    fn slack_rich_has_large_laxity_ratio() {
        let inst = Scenario::SlackRich.generate(80, 5);
        let s = workload_stats(&inst);
        assert!(s.mean_laxity_ratio > 10.0, "ratio {}", s.mean_laxity_ratio);
        assert_eq!(s.rigid_fraction, 0.0);
    }

    #[test]
    fn single_instant_arrivals_have_zero_load() {
        let inst = Instance::new(vec![Job::adp(3.0, 5.0, 1.0), Job::adp(3.0, 9.0, 2.0)]);
        assert_eq!(workload_stats(&inst).load, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_rejected() {
        let _ = workload_stats(&Instance::empty());
    }
}
