//! IO-layer fault injection for streaming trace ingestion — the
//! `EnvFaultMode` analogue for [`crate::TraceReader`].
//!
//! Real trace files fail in boring, mechanical ways: a line cut short by a
//! full disk, unrelated garbage interleaved by a misdirected logger, a file
//! whose final record was truncated by a kill. Each [`IoFaultMode`] injects
//! one of these corruptions into a clean trace deterministically (seeded),
//! and [`run_io_chaos`] checks every `(fault, quarantine-policy)` pair:
//! skipping policies must recover every undamaged record and count the
//! damage, the halting policy must stop at the first damaged record, and
//! nothing may panic. `fjs chaos` renders the resulting matrix alongside
//! the scheduler fault matrix.

use crate::io::{write_trace, Quarantine, TraceReader};
use fjs_core::job::{Instance, Job};
use fjs_prng::SmallRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A corruption mode for trace ingestion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoFaultMode {
    /// One data line is cut off mid-record (e.g. a full disk): the line
    /// keeps only its first column.
    TruncatedLine,
    /// Non-CSV garbage lines are interleaved between data records (e.g. a
    /// logger writing to the same file).
    InterleavedGarbage,
    /// The file ends in the middle of its final record (e.g. the writer
    /// was killed mid-write).
    EofMidRecord,
}

impl IoFaultMode {
    /// All ingestion fault modes.
    pub const ALL: [IoFaultMode; 3] = [
        IoFaultMode::TruncatedLine,
        IoFaultMode::InterleavedGarbage,
        IoFaultMode::EofMidRecord,
    ];

    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            IoFaultMode::TruncatedLine => "truncated-line",
            IoFaultMode::InterleavedGarbage => "interleaved-garbage",
            IoFaultMode::EofMidRecord => "eof-mid-record",
        }
    }

    /// How many records the corruption damages.
    pub fn damaged_records(&self) -> usize {
        match self {
            IoFaultMode::TruncatedLine | IoFaultMode::EofMidRecord => 1,
            IoFaultMode::InterleavedGarbage => GARBAGE_LINES,
        }
    }

    /// Applies the corruption to clean trace text, deterministically in
    /// `seed`. The result always contains `damaged_records()` malformed
    /// records; every other record is left byte-identical.
    pub fn corrupt(&self, text: &str, seed: u64) -> String {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lines: Vec<&str> = text.lines().collect();
        let data_idx: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .map(|(i, _)| i)
            .collect();
        assert!(
            !data_idx.is_empty(),
            "corrupt() needs at least one data record"
        );
        match self {
            IoFaultMode::TruncatedLine => {
                // Cutting at the first comma leaves a 1-column record,
                // which no header/arity rule can mistake for valid.
                let victim = data_idx[rng.u64_below(data_idx.len() as u64) as usize];
                let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
                let cut = out[victim].find(',').unwrap_or(out[victim].len());
                out[victim].truncate(cut);
                out.join("\n") + "\n"
            }
            IoFaultMode::InterleavedGarbage => {
                // Insert after the first data line so the garbage can
                // never be mistaken for a skippable header.
                let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
                let first_data = data_idx[0];
                for g in 0..GARBAGE_LINES {
                    let lo = first_data + 1;
                    let at = lo + rng.u64_below((out.len() - lo + 1) as u64) as usize;
                    out.insert(at, format!("@@garbage#{g}@@,<binary\u{1}junk>,!!"));
                }
                out.join("\n") + "\n"
            }
            IoFaultMode::EofMidRecord => {
                // Cut the whole file at the final record's first comma —
                // a writer killed mid-record, no trailing newline.
                let last = data_idx[data_idx.len() - 1];
                let offset: usize = lines[..last].iter().map(|l| l.len() + 1).sum::<usize>();
                let cut = lines[last].find(',').unwrap_or(lines[last].len());
                text[..offset + cut].to_string()
            }
        }
    }
}

/// Garbage lines [`IoFaultMode::InterleavedGarbage`] interleaves.
pub const GARBAGE_LINES: usize = 3;

/// One `(fault, policy)` cell of the ingestion chaos matrix.
#[derive(Clone, Debug)]
pub struct IoChaosCell {
    /// The injected fault.
    pub mode: IoFaultMode,
    /// The quarantine policy under test.
    pub policy: Quarantine,
    /// Whether the reader met the policy's contract.
    pub passed: bool,
    /// What happened (counts on pass, diagnosis on fail).
    pub detail: String,
}

/// The deterministic reference trace the matrix corrupts: a comment header
/// plus 8 integral records.
pub fn io_chaos_reference() -> Instance {
    Instance::new(
        (0..8)
            .map(|i| {
                let a = (i * 2) as f64;
                Job::adp(a, a + 3.0, 1.0 + (i % 3) as f64)
            })
            .collect::<Vec<_>>(),
    )
}

fn fail(mode: IoFaultMode, policy: Quarantine, why: String) -> IoChaosCell {
    IoChaosCell {
        mode,
        policy,
        passed: false,
        detail: why,
    }
}

/// Runs the full `IoFaultMode × Quarantine` ingestion matrix, seeded.
///
/// Contract per cell — any breach (or panic) fails the cell:
/// * [`Quarantine::Skip`] / [`Quarantine::DeadLetter`]: the stream yields
///   no error, recovers exactly the undamaged records, and counts exactly
///   the damaged ones (dead-letter additionally retains their raw text);
/// * [`Quarantine::Halt`]: the stream yields exactly one error and ends.
pub fn run_io_chaos(seed: u64) -> Vec<IoChaosCell> {
    let inst = io_chaos_reference();
    let clean = write_trace(&inst, None);
    let n = inst.len();
    let mut cells = Vec::new();
    for (i, &mode) in IoFaultMode::ALL.iter().enumerate() {
        let corrupted = mode.corrupt(&clean, seed.wrapping_add(i as u64));
        let damaged = mode.damaged_records();
        // Interleaved garbage damages *extra* lines; the others damage one
        // of the n real records.
        let intact = match mode {
            IoFaultMode::InterleavedGarbage => n,
            _ => n - 1,
        };
        for policy in Quarantine::ALL {
            cells.push(run_io_cell(mode, policy, &corrupted, intact, damaged));
        }
    }
    cells
}

fn run_io_cell(
    mode: IoFaultMode,
    policy: Quarantine,
    corrupted: &str,
    intact: usize,
    damaged: usize,
) -> IoChaosCell {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut reader = TraceReader::new(corrupted.as_bytes()).with_policy(policy);
        let mut ok = 0usize;
        let mut errors = Vec::new();
        let mut ok_after_error = false;
        for item in reader.by_ref() {
            match item {
                Ok(_) => {
                    if !errors.is_empty() {
                        ok_after_error = true;
                    }
                    ok += 1;
                }
                Err(e) => errors.push(e),
            }
        }
        (
            ok,
            errors,
            ok_after_error,
            reader.stats(),
            reader.dead_letters().len(),
        )
    }));
    let (ok, errors, ok_after_error, stats, dead) = match outcome {
        Ok(r) => r,
        Err(_) => return fail(mode, policy, "reader panicked".to_string()),
    };
    match policy {
        Quarantine::Halt => {
            if errors.len() != 1 {
                return fail(
                    mode,
                    policy,
                    format!("expected 1 error, got {}", errors.len()),
                );
            }
            if ok_after_error {
                return fail(
                    mode,
                    policy,
                    "stream continued past a halt error".to_string(),
                );
            }
            if ok > intact {
                return fail(
                    mode,
                    policy,
                    format!("{ok} records before error, > {intact}"),
                );
            }
            IoChaosCell {
                mode,
                policy,
                passed: true,
                detail: format!("halted at line {} after {ok} records", errors[0].line()),
            }
        }
        Quarantine::Skip | Quarantine::DeadLetter => {
            if let Some(e) = errors.first() {
                return fail(mode, policy, format!("unexpected error: {e}"));
            }
            if ok != intact {
                return fail(
                    mode,
                    policy,
                    format!("recovered {ok} records, want {intact}"),
                );
            }
            if stats.quarantined != damaged {
                return fail(
                    mode,
                    policy,
                    format!("quarantined {}, want {damaged}", stats.quarantined),
                );
            }
            let want_dead = if policy == Quarantine::DeadLetter {
                damaged
            } else {
                0
            };
            if dead != want_dead {
                return fail(
                    mode,
                    policy,
                    format!("{dead} dead letters, want {want_dead}"),
                );
            }
            IoChaosCell {
                mode,
                policy,
                passed: true,
                detail: format!("recovered {ok}, quarantined {}", stats.quarantined),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse_trace;

    #[test]
    fn corruptions_are_deterministic_and_malformed() {
        let clean = write_trace(&io_chaos_reference(), None);
        for mode in IoFaultMode::ALL {
            let a = mode.corrupt(&clean, 7);
            assert_eq!(
                a,
                mode.corrupt(&clean, 7),
                "{} not deterministic",
                mode.label()
            );
            assert_ne!(a, clean, "{} must change the text", mode.label());
            assert!(
                parse_trace(&a).is_err(),
                "{} must make the strict parser fail",
                mode.label()
            );
        }
    }

    #[test]
    fn full_matrix_passes() {
        for cell in run_io_chaos(42) {
            assert!(
                cell.passed,
                "{} / {}: {}",
                cell.mode.label(),
                cell.policy.label(),
                cell.detail
            );
        }
    }

    #[test]
    fn matrix_is_deterministic() {
        let a: Vec<String> = run_io_chaos(3).into_iter().map(|c| c.detail).collect();
        let b: Vec<String> = run_io_chaos(3).into_iter().map(|c| c.detail).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn garbage_lands_after_first_data_line() {
        // If garbage ever preceded all data, the header rule would absorb
        // one garbage line and the damage count would drop to 2.
        let clean = write_trace(&io_chaos_reference(), None);
        for seed in 0..32 {
            let corrupted = IoFaultMode::InterleavedGarbage.corrupt(&clean, seed);
            let mut reader = TraceReader::new(corrupted.as_bytes()).with_policy(Quarantine::Skip);
            let n = reader.by_ref().filter(Result::is_ok).count();
            assert_eq!(n, io_chaos_reference().len(), "seed {seed}");
            assert_eq!(reader.stats().quarantined, GARBAGE_LINES, "seed {seed}");
        }
    }
}
