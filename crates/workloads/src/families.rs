//! Seeded *integer* instance families for conformance testing.
//!
//! The exact solvers in `fjs-opt` are only available on small instances with
//! integral arrivals/deadlines/lengths (the integrality lemma), so the
//! conformance harness draws its cases from families that are integral *by
//! construction*: every arrival, deadline and length is a small non-negative
//! integer stored exactly in an `f64`. This also makes the metamorphic
//! oracles exact — translating by an integer offset or scaling by a power of
//! two keeps all derived times bit-exact.
//!
//! A family is parameterized by the maximum length ratio `μ`, a deadline
//! slack regime, and an arrival-load regime; a dedicated *uniform-lengths*
//! family (all jobs the same length, μ = 1) prepares the uniform-jobs
//! special case of Liu, Khuller & Tang, *Online Span Minimization for
//! Flexible Uniform Jobs*.

use fjs_core::job::{Instance, Job};
use fjs_prng::SmallRng;

/// How much room a job's starting deadline leaves after its arrival.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlackRegime {
    /// `d = a`: the schedule is forced, every scheduler ties.
    Rigid,
    /// `d − a ∈ {0, 1, 2}`: little room, near-rigid.
    Tight,
    /// `d − a ∈ [0, p]`: slack scales with the job's own length.
    Proportional,
    /// `d − a ∈ [0, 4μ]`: ample stacking room.
    Generous,
}

/// How densely arrivals pack on the integer time line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadRegime {
    /// Inter-arrival gaps in `{0, 0, 1}`: many simultaneous releases.
    Burst,
    /// Gaps in `{0, 1, 2}`.
    Moderate,
    /// Gaps in `[1, 2μ]`: arrivals are pairwise distinct (gap ≥ 1), which
    /// the arrival-order permutation oracle requires.
    Sparse,
}

/// A seeded integer instance family.
///
/// ```
/// use fjs_workloads::{IntFamily, LoadRegime, SlackRegime};
///
/// let fam = IntFamily { n: 8, mu: 4, slack: SlackRegime::Generous, load: LoadRegime::Moderate };
/// let a = fam.generate(3);
/// assert_eq!(a, fam.generate(3), "same seed → identical instance");
/// assert!(a.mu().unwrap() <= 4.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IntFamily {
    /// Number of jobs.
    pub n: usize,
    /// Length bound: lengths are drawn uniformly from `1..=mu`, so the
    /// realized max/min ratio is at most `mu`.
    pub mu: u64,
    /// Deadline slack regime.
    pub slack: SlackRegime,
    /// Arrival density regime.
    pub load: LoadRegime,
}

impl IntFamily {
    /// Materializes the family with the given seed; every field of every
    /// job is a small non-negative integer. Same `(family, seed)` → same
    /// instance, bit for bit.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mu = self.mu.max(1);
        let mut t: u64 = 0;
        let jobs: Vec<Job> = (0..self.n.max(1))
            .map(|_| {
                t += match self.load {
                    LoadRegime::Burst => [0, 0, 1][rng.u64_below(3) as usize],
                    LoadRegime::Moderate => rng.u64_below(3),
                    LoadRegime::Sparse => 1 + rng.u64_below(2 * mu),
                };
                let p = 1 + rng.u64_below(mu);
                let slack = match self.slack {
                    SlackRegime::Rigid => 0,
                    SlackRegime::Tight => rng.u64_below(3),
                    SlackRegime::Proportional => rng.u64_below(p + 1),
                    SlackRegime::Generous => rng.u64_below(4 * mu + 1),
                };
                Job::adp(t as f64, (t + slack) as f64, p as f64)
            })
            .collect();
        Instance::new(jobs)
    }

    /// Short display label, e.g. `int[n=8,mu=4,generous,moderate]`.
    pub fn label(&self) -> String {
        let slack = match self.slack {
            SlackRegime::Rigid => "rigid",
            SlackRegime::Tight => "tight",
            SlackRegime::Proportional => "prop",
            SlackRegime::Generous => "generous",
        };
        let load = match self.load {
            LoadRegime::Burst => "burst",
            LoadRegime::Moderate => "moderate",
            LoadRegime::Sparse => "sparse",
        };
        format!("int[n={},mu={},{slack},{load}]", self.n, self.mu)
    }
}

/// The uniform-lengths family: all jobs share one integer length `p`
/// (μ = 1 exactly), integer arrivals and slacks. This is the workload
/// model of the uniform-jobs follow-up paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UniformFamily {
    /// Number of jobs.
    pub n: usize,
    /// The common job length (≥ 1).
    pub p: u64,
    /// Maximum deadline slack; slack is uniform in `0..=max_slack`.
    pub max_slack: u64,
    /// Arrival density regime.
    pub load: LoadRegime,
}

impl UniformFamily {
    /// Materializes the family with the given seed.
    pub fn generate(&self, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = self.p.max(1);
        let mut t: u64 = 0;
        let jobs: Vec<Job> = (0..self.n.max(1))
            .map(|_| {
                t += match self.load {
                    LoadRegime::Burst => [0, 0, 1][rng.u64_below(3) as usize],
                    LoadRegime::Moderate => rng.u64_below(3),
                    LoadRegime::Sparse => 1 + rng.u64_below(2 * p),
                };
                let slack = rng.u64_below(self.max_slack + 1);
                Job::adp(t as f64, (t + slack) as f64, p as f64)
            })
            .collect();
        Instance::new(jobs)
    }

    /// Short display label, e.g. `uniform[n=8,p=3,slack<=6,burst]`.
    pub fn label(&self) -> String {
        let load = match self.load {
            LoadRegime::Burst => "burst",
            LoadRegime::Moderate => "moderate",
            LoadRegime::Sparse => "sparse",
        };
        format!(
            "uniform[n={},p={},slack<={},{load}]",
            self.n, self.p, self.max_slack
        )
    }
}

/// A member of the conformance deck: either a general integer family or a
/// uniform-lengths family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// General integer family.
    Int(IntFamily),
    /// Uniform-lengths family (μ = 1).
    Uniform(UniformFamily),
}

impl Family {
    /// Materializes the family with the given seed.
    pub fn generate(&self, seed: u64) -> Instance {
        match self {
            Family::Int(f) => f.generate(seed),
            Family::Uniform(f) => f.generate(seed),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Family::Int(f) => f.label(),
            Family::Uniform(f) => f.label(),
        }
    }

    /// Number of jobs the family generates.
    pub fn n(&self) -> usize {
        match self {
            Family::Int(f) => f.n.max(1),
            Family::Uniform(f) => f.n.max(1),
        }
    }
}

/// The canonical conformance deck: a grid over `μ`, slack and load, the
/// uniform-lengths family at several lengths, and a few larger stress
/// members. Families early in the deck are small enough for the exact DP,
/// so the competitive-ratio oracles get coverage on every run. The deck
/// shape is part of the conformance contract: case `i` of a run always
/// draws from deck member `i % deck.len()`.
pub fn conformance_deck() -> Vec<Family> {
    let mut deck = Vec::new();
    // Small DP-sized members: every (μ, slack, load) combination at n ≤ 7.
    for &mu in &[1, 2, 4, 8] {
        for &slack in &[
            SlackRegime::Rigid,
            SlackRegime::Tight,
            SlackRegime::Proportional,
            SlackRegime::Generous,
        ] {
            for &load in &[LoadRegime::Burst, LoadRegime::Moderate, LoadRegime::Sparse] {
                deck.push(Family::Int(IntFamily {
                    n: 6,
                    mu,
                    slack,
                    load,
                }));
            }
        }
    }
    // Uniform-jobs members (μ = 1 by construction).
    for &(p, max_slack) in &[(1, 2), (3, 6), (5, 0)] {
        for &load in &[LoadRegime::Burst, LoadRegime::Sparse] {
            deck.push(Family::Uniform(UniformFamily {
                n: 6,
                p,
                max_slack,
                load,
            }));
        }
    }
    // Larger members: beyond the DP limit, exercising the structural and
    // metamorphic oracles at scale.
    for &(n, mu) in &[(24, 4), (40, 8), (64, 16)] {
        deck.push(Family::Int(IntFamily {
            n,
            mu,
            slack: SlackRegime::Generous,
            load: LoadRegime::Moderate,
        }));
        deck.push(Family::Int(IntFamily {
            n,
            mu,
            slack: SlackRegime::Proportional,
            load: LoadRegime::Burst,
        }));
    }
    deck
}

/// The **uniform conformance deck**: a slack×load grid with every length
/// pinned to 1 — the workload model of the uniform-jobs paper — plus a few
/// members at larger common lengths (so the oracles verify that scaling
/// rescales the unit rather than assuming `p = 1`) and two larger
/// stress members past the quick-mode cutoff. Like [`conformance_deck`],
/// the deck shape is part of the conformance contract: case `i` of a
/// `fjs conform uniform` run always draws from member `i % deck.len()`.
pub fn uniform_conformance_deck() -> Vec<Family> {
    let mut deck = Vec::new();
    // The slack×load grid at unit length. `max_slack` doubles as the
    // normalized laxity λ ceiling, sweeping the `1 + λ` guarantees from
    // the rigid tie (λ = 0) to ample stacking room.
    for &max_slack in &[0, 1, 2, 4, 8] {
        for &load in &[LoadRegime::Burst, LoadRegime::Moderate, LoadRegime::Sparse] {
            deck.push(Family::Uniform(UniformFamily {
                n: 6,
                p: 1,
                max_slack,
                load,
            }));
        }
    }
    // Rescaled units: identical regime at p > 1, so `λ = slack / p` is
    // fractional and the scale-invariance of the family's bounds is
    // exercised for real.
    for &p in &[2, 5] {
        deck.push(Family::Uniform(UniformFamily {
            n: 6,
            p,
            max_slack: 4,
            load: LoadRegime::Moderate,
        }));
    }
    // Larger members: past quick mode, exercising the structural and
    // metamorphic oracles at scale.
    for &n in &[40, 64] {
        deck.push(Family::Uniform(UniformFamily {
            n,
            p: 1,
            max_slack: 8,
            load: LoadRegime::Burst,
        }));
    }
    deck
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_small_integer(x: f64) -> bool {
        x >= 0.0 && x.fract() == 0.0 && x < 1e9
    }

    #[test]
    fn families_are_integral_and_deterministic() {
        for (i, fam) in conformance_deck().iter().enumerate() {
            let a = fam.generate(i as u64);
            assert_eq!(
                a,
                fam.generate(i as u64),
                "{} not deterministic",
                fam.label()
            );
            for (_, j) in a.iter() {
                assert!(is_small_integer(j.arrival().get()), "{}", fam.label());
                assert!(is_small_integer(j.deadline().get()), "{}", fam.label());
                assert!(is_small_integer(j.length().get()), "{}", fam.label());
                assert!(j.length().get() >= 1.0);
            }
        }
    }

    #[test]
    fn mu_bound_is_respected() {
        let fam = IntFamily {
            n: 50,
            mu: 4,
            slack: SlackRegime::Generous,
            load: LoadRegime::Moderate,
        };
        let inst = fam.generate(9);
        assert!(inst.mu().unwrap() <= 4.0 + 1e-12);
    }

    #[test]
    fn uniform_family_has_mu_one() {
        let fam = UniformFamily {
            n: 30,
            p: 3,
            max_slack: 5,
            load: LoadRegime::Burst,
        };
        let inst = fam.generate(2);
        assert_eq!(inst.mu().unwrap(), 1.0);
        for (_, j) in inst.iter() {
            assert_eq!(j.length().get(), 3.0);
        }
    }

    #[test]
    fn sparse_load_gives_distinct_arrivals() {
        let fam = IntFamily {
            n: 40,
            mu: 3,
            slack: SlackRegime::Tight,
            load: LoadRegime::Sparse,
        };
        let inst = fam.generate(5);
        let mut arrivals: Vec<f64> = inst.iter().map(|(_, j)| j.arrival().get()).collect();
        arrivals.sort_by(f64::total_cmp);
        arrivals.dedup();
        assert_eq!(arrivals.len(), inst.len());
    }

    #[test]
    fn deck_labels_are_unique() {
        let labels: Vec<String> = conformance_deck().iter().map(Family::label).collect();
        let mut d = labels.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), labels.len(), "duplicate deck labels");
    }

    #[test]
    fn uniform_deck_is_all_uniform_and_deterministic() {
        let deck = uniform_conformance_deck();
        assert!(deck.len() >= 15, "slack×load grid plus extras");
        let mut labels: Vec<String> = deck.iter().map(Family::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), deck.len(), "duplicate uniform deck labels");
        for (i, fam) in deck.iter().enumerate() {
            assert!(matches!(fam, Family::Uniform(_)), "{}", fam.label());
            let inst = fam.generate(i as u64);
            assert_eq!(inst, fam.generate(i as u64));
            assert_eq!(inst.mu(), Some(1.0), "{}", fam.label());
            let p = inst.jobs()[0].length();
            assert!(
                inst.jobs().iter().all(|j| j.length() == p),
                "{} is not uniform",
                fam.label()
            );
        }
    }

    #[test]
    fn uniform_deck_has_quick_members_and_rescaled_units() {
        let deck = uniform_conformance_deck();
        assert!(
            deck.iter().filter(|f| f.n() <= 8).count() >= 15,
            "quick mode needs the full grid"
        );
        let lengths: Vec<u64> = deck
            .iter()
            .filter_map(|f| match f {
                Family::Uniform(u) => Some(u.p),
                _ => None,
            })
            .collect();
        assert!(
            lengths.contains(&2) && lengths.contains(&5),
            "p > 1 members"
        );
        assert!(deck.iter().any(|f| f.n() > 8), "stress members past quick");
    }
}
