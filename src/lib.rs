//! # fjs — Online Flexible Job Scheduling for Minimum Span
//!
//! A faithful, tested reproduction of **Ren & Tang, SPAA 2017**: online
//! schedulers for jobs with starting deadlines minimizing the span (the
//! total time at least one job runs), together with the paper's adversarial
//! lower-bound constructions, offline optimal baselines, synthetic
//! workloads, and the Section 5 MinUsageTime Dynamic Bin Packing extension.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — jobs, schedules, span, the event-driven online simulation
//!   engine (adaptive environments, deferred length oracles);
//! * [`schedulers`] — Eager, Lazy, Batch, Batch+, Classify-by-Duration
//!   Batch+, Profit, Doubler, and the flag-job graph of §4.3;
//! * [`adversary`] — the Theorem 3.3 and Theorem 4.1 adaptive adversaries
//!   and the Figure 2/3 tightness instances;
//! * [`opt`] — exact optima, certified lower bounds, descent upper bounds;
//! * [`workloads`] — seeded synthetic workload generators;
//! * [`dbp`] — First Fit dynamic bin packing on top of schedules;
//! * [`analysis`] — parallel sweeps, statistics, table rendering.
//!
//! ## Quickstart
//!
//! ```
//! use fjs::prelude::*;
//! use fjs::schedulers::BatchPlus;
//!
//! // Three flexible jobs: (arrival, starting deadline, length).
//! let inst = Instance::new(vec![
//!     Job::adp(0.0, 5.0, 2.0),
//!     Job::adp(1.0, 9.0, 1.0),
//!     Job::adp(2.0, 7.0, 3.0),
//! ]);
//! let out = run_static(&inst, Clairvoyance::NonClairvoyant, BatchPlus::new());
//! assert!(out.is_feasible());
//! // Batch+ waits until t=5 and starts everything together: span = 3.
//! assert_eq!(out.span, dur(3.0));
//! ```

#![warn(missing_docs)]

pub use fjs_adversary as adversary;
pub use fjs_analysis as analysis;
pub use fjs_core as core;
pub use fjs_dbp as dbp;
pub use fjs_opt as opt;
pub use fjs_schedulers as schedulers;
pub use fjs_workloads as workloads;

/// The everyday imports: core types plus the scheduler registry.
pub mod prelude {
    pub use fjs_core::prelude::*;
    pub use fjs_schedulers::SchedulerKind;
}
